//! Join-based bulk operations: `union`, `intersection`, `difference`,
//! `multi_insert`, `multi_remove`, `filter`, `build_sorted`.
//!
//! These are the parallel divide-and-conquer algorithms of "Just Join for
//! Parallel Ordered Sets" [16] that PAM uses and the paper's batching
//! writer relies on (Appendix F): each splits one tree by the other's root
//! key and recurses on the two halves independently — `rayon::join` above
//! a sequential cutoff — then reassembles with `join`/`join2`.
//!
//! Ownership: like all updates, each operation consumes one owned
//! reference per input root (discarded subtrees are collected eagerly, so
//! GC stays precise even for temporaries) and returns an owned result.

use crate::forest::Forest;
use crate::node::Root;
use crate::params::{par_cutoff, TreeParams};
use mvcc_plm::{AllocCtx, OptNodeId};

impl<P: TreeParams> Forest<P> {
    /// Fork the two halves onto the work-stealing pool when `par` and
    /// the pool has workers, else recurse sequentially on this thread.
    ///
    /// Each parallel half re-acquires its *executing* thread's
    /// allocation context ([`Forest::with_task_ctx`]): `rayon::join` may
    /// run a half on any pool thread, so the old shim's same-thread
    /// guarantee (which let a single pin cover both halves) no longer
    /// holds — and funneling every stolen subtask through the forker's
    /// pinned shard would re-serialize the allocator the sharding was
    /// built to parallelize. With a sequential pool
    /// (`MVCC_POOL_THREADS=1`) the fork — and with it the re-pin — is
    /// skipped entirely, so session/`_in` pins cover whole bulk ops
    /// exactly as they did under the sequential shim.
    #[inline]
    fn maybe_join<A: Send, B: Send>(
        &self,
        par: bool,
        fa: impl FnOnce() -> A + Send,
        fb: impl FnOnce() -> B + Send,
    ) -> (A, B) {
        if par && rayon::pool::current_num_threads() > 1 {
            rayon::join(|| self.with_task_ctx(fa), || self.with_task_ctx(fb))
        } else {
            (fa(), fb())
        }
    }

    /// Union of two maps; on duplicate keys the result holds
    /// `combine(value_in_a, value_in_b)`. Consumes both roots.
    /// Work O(m · log(n/m + 1)), polylog span.
    pub fn union_with(
        &self,
        a: Root,
        b: Root,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) -> Root {
        self.union_rec(a, b, &combine)
    }

    /// Union where `b`'s value wins on duplicates (the "newer batch
    /// overrides" semantics of a batched writer).
    pub fn union(&self, a: Root, b: Root) -> Root {
        self.union_rec(a, b, &|_old, new| new.clone())
    }

    fn union_rec<F: Fn(&P::V, &P::V) -> P::V + Sync>(&self, a: Root, b: Root, f: &F) -> Root {
        if a.is_none() {
            return b;
        }
        if b.is_none() {
            return a;
        }
        let par = self.size(a) + self.size(b) > par_cutoff();
        let (bl, bk, bv, br) = self.expose_owned(b.unwrap());
        let (al, m, ar) = self.split(a, &bk);
        let ((l, r), value) = {
            let (l, r) = self.maybe_join(
                par,
                || self.union_rec(al, bl, f),
                || self.union_rec(ar, br, f),
            );
            let value = match &m {
                Some((_, av)) => f(av, &bv),
                None => bv,
            };
            ((l, r), value)
        };
        self.join(l, bk, value, r)
    }

    /// Intersection of two maps, keeping keys present in both with
    /// `combine(value_in_a, value_in_b)`. Consumes both roots.
    pub fn intersection_with(
        &self,
        a: Root,
        b: Root,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) -> Root {
        self.inter_rec(a, b, &combine)
    }

    fn inter_rec<F: Fn(&P::V, &P::V) -> P::V + Sync>(&self, a: Root, b: Root, f: &F) -> Root {
        if a.is_none() {
            self.release(b);
            return OptNodeId::NONE;
        }
        if b.is_none() {
            self.release(a);
            return OptNodeId::NONE;
        }
        let par = self.size(a) + self.size(b) > par_cutoff();
        let (bl, bk, bv, br) = self.expose_owned(b.unwrap());
        let (al, m, ar) = self.split(a, &bk);
        let (l, r) = self.maybe_join(
            par,
            || self.inter_rec(al, bl, f),
            || self.inter_rec(ar, br, f),
        );
        match m {
            Some((k, av)) => {
                let v = f(&av, &bv);
                self.join(l, k, v, r)
            }
            None => self.join2(l, r),
        }
    }

    /// All entries of `a` whose key is *not* in `b`. Consumes both roots.
    pub fn difference(&self, a: Root, b: Root) -> Root {
        if a.is_none() {
            self.release(b);
            return OptNodeId::NONE;
        }
        if b.is_none() {
            return a;
        }
        let par = self.size(a) + self.size(b) > par_cutoff();
        let (bl, bk, _bv, br) = self.expose_owned(b.unwrap());
        let (al, _m, ar) = self.split(a, &bk);
        let (l, r) = self.maybe_join(par, || self.difference(al, bl), || self.difference(ar, br));
        self.join2(l, r)
    }

    /// Keep only the entries satisfying `pred`. Consumes `t`.
    pub fn filter(&self, t: Root, pred: impl Fn(&P::K, &P::V) -> bool + Sync) -> Root {
        self.filter_rec(t, &pred)
    }

    fn filter_rec<F: Fn(&P::K, &P::V) -> bool + Sync>(&self, t: Root, pred: &F) -> Root {
        let Some(id) = t.get() else {
            return OptNodeId::NONE;
        };
        let par = self.size(t) > par_cutoff();
        let (l, k, v, r) = self.expose_owned(id);
        let (fl, fr) = self.maybe_join(
            par,
            || self.filter_rec(l, pred),
            || self.filter_rec(r, pred),
        );
        if pred(&k, &v) {
            self.join(fl, k, v, fr)
        } else {
            self.join2(fl, fr)
        }
    }

    /// Build a tree from a strictly-sorted slice of entries (clones them).
    /// O(n) work, O(log n) span.
    pub fn build_sorted(&self, items: &[(P::K, P::V)]) -> Root {
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "build_sorted requires strictly increasing keys"
        );
        self.build_rec(items)
    }

    fn build_rec(&self, items: &[(P::K, P::V)]) -> Root {
        if items.is_empty() {
            return OptNodeId::NONE;
        }
        let mid = items.len() / 2;
        let (k, v) = items[mid].clone();
        let (l, r) = self.maybe_join(
            items.len() > par_cutoff(),
            || self.build_rec(&items[..mid]),
            || self.build_rec(&items[mid + 1..]),
        );
        OptNodeId::some(self.make(l, k, v, r))
    }

    /// Apply a whole batch of insertions atomically — PAM's `multi_insert`,
    /// the workhorse of the paper's batched single-writer (Appendix F).
    /// The batch need not be sorted; duplicate keys inside the batch are
    /// merged left-to-right with `combine`, then merged into the map with
    /// `combine(old_value, batch_value)`. Consumes `t`.
    pub fn multi_insert(
        &self,
        t: Root,
        mut batch: Vec<(P::K, P::V)>,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) -> Root {
        if batch.is_empty() {
            return t;
        }
        batch.sort_by(|a, b| a.0.cmp(&b.0));
        // Merge duplicates left-to-right (later entries are "newer").
        let mut merged: Vec<(P::K, P::V)> = Vec::with_capacity(batch.len());
        for (k, v) in batch {
            match merged.last_mut() {
                Some(last) if last.0 == k => last.1 = combine(&last.1, &v),
                _ => merged.push((k, v)),
            }
        }
        let built = self.build_sorted(&merged);
        self.union_with(t, built, combine)
    }

    /// Remove a whole batch of keys atomically. Keys need not be sorted or
    /// distinct. Consumes `t`.
    pub fn multi_remove(&self, t: Root, mut keys: Vec<P::K>) -> Root {
        keys.sort();
        keys.dedup();
        self.remove_sorted(t, &keys)
    }

    /// [`Forest::multi_remove`] over a **borrowed, strictly-sorted** key
    /// slice — no per-call clone, so a retrying writer (e.g. the batching
    /// combiner) can resolve its batch once and reuse it across attempts.
    /// Consumes `t`.
    pub fn multi_remove_sorted(&self, t: Root, keys: &[P::K]) -> Root {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "multi_remove_sorted requires strictly increasing keys"
        );
        self.remove_sorted(t, keys)
    }

    // ------------------------------------------------------------------
    // Explicit-context variants
    // ------------------------------------------------------------------
    //
    // The bulk operations are exactly where a batching writer allocates
    // in anger; these variants pin the *calling* thread to one arena
    // shard. The pin governs the sequential regime: the top of the
    // recursion and every subtree below the fork cutoff on this thread.
    // Once recursion forks onto the work-stealing pool, each parallel
    // subtask re-pins to its executing thread's own shard
    // (`with_task_ctx` in `maybe_join`) — one shard per allocating
    // thread, so a wide parallel op spreads over the sharded allocator
    // instead of serializing on the caller's freelist.

    /// [`Forest::union`] through an explicit allocation context.
    pub fn union_in(&self, ctx: AllocCtx, a: Root, b: Root) -> Root {
        self.with_ctx(ctx, || self.union(a, b))
    }

    /// [`Forest::build_sorted`] through an explicit allocation context.
    pub fn build_sorted_in(&self, ctx: AllocCtx, items: &[(P::K, P::V)]) -> Root {
        self.with_ctx(ctx, || self.build_sorted(items))
    }

    /// [`Forest::multi_insert`] through an explicit allocation context.
    pub fn multi_insert_in(
        &self,
        ctx: AllocCtx,
        t: Root,
        batch: Vec<(P::K, P::V)>,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) -> Root {
        self.with_ctx(ctx, || self.multi_insert(t, batch, combine))
    }

    /// [`Forest::multi_remove`] through an explicit allocation context.
    pub fn multi_remove_in(&self, ctx: AllocCtx, t: Root, keys: Vec<P::K>) -> Root {
        self.with_ctx(ctx, || self.multi_remove(t, keys))
    }

    fn remove_sorted(&self, t: Root, keys: &[P::K]) -> Root {
        if t.is_none() || keys.is_empty() {
            return t;
        }
        let mid = keys.len() / 2;
        let (l, _m, r) = self.split(t, &keys[mid]);
        let (l2, r2) = self.maybe_join(
            self.size(l) + self.size(r) > par_cutoff(),
            || self.remove_sorted(l, &keys[..mid]),
            || self.remove_sorted(r, &keys[mid + 1..]),
        );
        self.join2(l2, r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SumU64Map, U64Map};
    use std::collections::BTreeMap;

    fn from_pairs(f: &Forest<U64Map>, pairs: &[(u64, u64)]) -> Root {
        let mut t = f.empty();
        for (k, v) in pairs {
            t = f.insert(t, *k, *v);
        }
        t
    }

    #[test]
    fn union_matches_model() {
        let f: Forest<U64Map> = Forest::new();
        let a: Vec<_> = (0..300u64).map(|k| (k * 2, k)).collect();
        let b: Vec<_> = (0..300u64).map(|k| (k * 3, k + 1000)).collect();
        let ta = from_pairs(&f, &a);
        let tb = from_pairs(&f, &b);
        let u = f.union(ta, tb);
        let mut model: BTreeMap<u64, u64> = a.iter().copied().collect();
        for (k, v) in &b {
            model.insert(*k, *v); // b wins
        }
        assert_eq!(f.to_vec(u), model.into_iter().collect::<Vec<_>>());
        f.check_invariants(u);
        f.release(u);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn union_with_combiner() {
        let f: Forest<U64Map> = Forest::new();
        let ta = from_pairs(&f, &[(1, 10), (2, 20), (3, 30)]);
        let tb = from_pairs(&f, &[(2, 2), (3, 3), (4, 4)]);
        let u = f.union_with(ta, tb, |a, b| a + b);
        assert_eq!(f.to_vec(u), vec![(1, 10), (2, 22), (3, 33), (4, 4)]);
        f.release(u);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn union_preserves_snapshots_of_inputs() {
        let f: Forest<U64Map> = Forest::new();
        let ta = from_pairs(&f, &(0..500u64).map(|k| (k, k)).collect::<Vec<_>>());
        let tb = from_pairs(&f, &(250..750u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        f.retain(ta);
        f.retain(tb);
        let u = f.union(ta, tb);
        // Inputs still intact.
        assert_eq!(f.size(ta), 500);
        assert_eq!(f.size(tb), 500);
        assert_eq!(f.get(ta, &300), Some(&300));
        assert_eq!(f.get(tb, &300), Some(&301));
        assert_eq!(f.get(u, &300), Some(&301));
        assert_eq!(f.size(u), 750);
        f.check_invariants(ta);
        f.check_invariants(tb);
        f.check_invariants(u);
        f.release(ta);
        f.release(tb);
        f.release(u);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn intersection_matches_model() {
        let f: Forest<U64Map> = Forest::new();
        let a: Vec<_> = (0..200u64).map(|k| (k * 2, k)).collect();
        let b: Vec<_> = (0..200u64).map(|k| (k * 3, k)).collect();
        let ta = from_pairs(&f, &a);
        let tb = from_pairs(&f, &b);
        let i = f.intersection_with(ta, tb, |x, y| x + y);
        let bm: BTreeMap<u64, u64> = b.iter().copied().collect();
        let expected: Vec<(u64, u64)> = a
            .iter()
            .filter_map(|(k, v)| bm.get(k).map(|w| (*k, v + w)))
            .collect();
        assert_eq!(f.to_vec(i), expected);
        f.release(i);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn difference_matches_model() {
        let f: Forest<U64Map> = Forest::new();
        let a: Vec<_> = (0..300u64).map(|k| (k, k)).collect();
        let b: Vec<_> = (0..300u64).filter(|k| k % 3 == 0).map(|k| (k, 0)).collect();
        let ta = from_pairs(&f, &a);
        let tb = from_pairs(&f, &b);
        let d = f.difference(ta, tb);
        let expected: Vec<(u64, u64)> = a.iter().filter(|(k, _)| k % 3 != 0).copied().collect();
        assert_eq!(f.to_vec(d), expected);
        f.check_invariants(d);
        f.release(d);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn multi_insert_matches_sequential_inserts() {
        let f: Forest<SumU64Map> = Forest::new();
        let mut t = f.empty();
        for k in 0..500u64 {
            t = f.insert(t, k * 2, k);
        }
        let batch: Vec<(u64, u64)> = (0..400u64).map(|k| (k * 3, k + 7)).collect();
        f.retain(t);
        let batched = f.multi_insert(t, batch.clone(), |_o, n| *n);
        let mut seq = t;
        for (k, v) in batch {
            seq = f.insert(seq, k, v);
        }
        assert_eq!(f.to_vec(batched), f.to_vec(seq));
        assert_eq!(f.aug_total(batched), f.aug_total(seq));
        f.check_invariants(batched);
        f.release(batched);
        f.release(seq);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn multi_insert_merges_batch_duplicates() {
        let f: Forest<U64Map> = Forest::new();
        let t = f.multi_insert(
            f.empty(),
            vec![(1, 1), (1, 2), (2, 5), (1, 4)],
            |old, new| old + new,
        );
        assert_eq!(f.to_vec(t), vec![(1, 7), (2, 5)]);
        f.release(t);
    }

    #[test]
    fn multi_remove_matches_model() {
        let f: Forest<U64Map> = Forest::new();
        let mut t = f.empty();
        for k in 0..1000u64 {
            t = f.insert(t, k, k);
        }
        let keys: Vec<u64> = (0..1000u64).filter(|k| k % 7 == 0).chain([5000]).collect();
        let t = f.multi_remove(t, keys);
        assert_eq!(f.size(t), 1000 - 143);
        assert!(!f.contains(t, &0));
        assert!(!f.contains(t, &7));
        assert!(f.contains(t, &1));
        f.check_invariants(t);
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn filter_and_build_sorted() {
        let f: Forest<U64Map> = Forest::new();
        let items: Vec<(u64, u64)> = (0..500u64).map(|k| (k, k)).collect();
        let t = f.build_sorted(&items);
        f.check_invariants(t);
        assert_eq!(f.size(t), 500);
        let t = f.filter(t, |k, _| k % 2 == 0);
        assert_eq!(f.size(t), 250);
        assert!(f.contains(t, &0) && !f.contains(t, &1));
        f.check_invariants(t);
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn large_parallel_union_exceeds_cutoff() {
        let f: Forest<U64Map> = Forest::new();
        let a: Vec<(u64, u64)> = (0..6000u64).map(|k| (k * 2, k)).collect();
        let b: Vec<(u64, u64)> = (0..6000u64).map(|k| (k * 2 + 1, k)).collect();
        let ta = f.build_sorted(&a);
        let tb = f.build_sorted(&b);
        let u = f.union(ta, tb);
        assert_eq!(f.size(u), 12000);
        f.check_invariants(u);
        f.release(u);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn empty_edge_cases() {
        let f: Forest<U64Map> = Forest::new();
        let t = from_pairs(&f, &[(1, 1), (2, 2)]);
        f.retain(t);
        f.retain(t);
        f.retain(t);
        assert_eq!(f.to_vec(f.union(t, f.empty())), vec![(1, 1), (2, 2)]);
        assert!(f.intersection_with(t, f.empty(), |a, _| *a).is_none());
        assert_eq!(f.to_vec(f.difference(t, f.empty())), vec![(1, 1), (2, 2)]);
        assert!(f.build_sorted(&[]).is_none());
        let t2 = f.multi_insert(t, vec![], |_o, n| *n);
        assert_eq!(t2, t);
        // Ref accounting: creation + 3 retains = 4 owned refs; union and
        // difference each consumed one and returned it, intersection
        // consumed one outright, multi_insert returned its input as `t2`.
        // Three owned refs remain.
        f.release(t);
        f.release(t);
        f.release(t2);
        assert_eq!(f.arena().live(), 0);
    }
}
