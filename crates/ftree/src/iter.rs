//! Lazy in-order iterators over one tree version.
//!
//! Like every query, iteration touches no reference counts and no shared
//! mutable state: holding a version root pins the whole snapshot, so an
//! iterator may be consumed at any pace (even interleaved with writer
//! commits) and still observes exactly its version — the mechanism behind
//! delay-free read transactions extends to lazy consumption.

use std::ops::Bound;

use mvcc_plm::NodeId;

use crate::forest::Forest;
use crate::node::Root;
use crate::params::TreeParams;

/// In-order iterator over all entries of one version.
///
/// Created by [`Forest::iter`]. Holds `O(log n)` node ids of pending
/// ancestors; `next` is amortized O(1).
pub struct Iter<'a, P: TreeParams> {
    forest: &'a Forest<P>,
    /// Ancestors whose entry (and right subtree) are still pending.
    stack: Vec<NodeId>,
    remaining: usize,
}

impl<'a, P: TreeParams> Iter<'a, P> {
    fn push_left(&mut self, mut t: Root) {
        while let Some(id) = t.get() {
            self.stack.push(id);
            t = self.forest.node(id).left();
        }
    }
}

impl<'a, P: TreeParams> Iterator for Iter<'a, P> {
    type Item = (&'a P::K, &'a P::V);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let n = self.forest.node(id);
        self.push_left(n.right());
        self.remaining -= 1;
        Some((n.key(), n.value()))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<P: TreeParams> ExactSizeIterator for Iter<'_, P> {}
impl<P: TreeParams> std::iter::FusedIterator for Iter<'_, P> {}

/// In-order iterator over the entries whose keys fall in a range.
///
/// Created by [`Forest::range_iter`] / [`Forest::range_iter_bounds`].
/// Visits O(log n + output) nodes in total.
pub struct RangeIter<'a, P: TreeParams> {
    forest: &'a Forest<P>,
    stack: Vec<NodeId>,
    hi: Bound<&'a P::K>,
}

impl<'a, P: TreeParams> RangeIter<'a, P> {
    /// Descend, skipping subtrees entirely below the lower bound.
    fn push_left_from(&mut self, mut t: Root, lo: Bound<&P::K>) {
        while let Some(id) = t.get() {
            let n = self.forest.node(id);
            let below = match lo {
                Bound::Included(k) => n.key() < k,
                Bound::Excluded(k) => n.key() <= k,
                Bound::Unbounded => false,
            };
            if below {
                t = n.right();
            } else {
                self.stack.push(id);
                t = n.left();
            }
        }
    }
}

impl<'a, P: TreeParams> Iterator for RangeIter<'a, P> {
    type Item = (&'a P::K, &'a P::V);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let n = self.forest.node(id);
        let above = match self.hi {
            Bound::Included(k) => n.key() > k,
            Bound::Excluded(k) => n.key() >= k,
            Bound::Unbounded => false,
        };
        if above {
            // In-order: everything still stacked is larger too.
            self.stack.clear();
            return None;
        }
        // The right subtree's keys all exceed this node's, which already
        // passed the lower bound — descend with the bound dropped.
        let mut t = n.right();
        while let Some(rid) = t.get() {
            self.stack.push(rid);
            t = self.forest.node(rid).left();
        }
        Some((n.key(), n.value()))
    }
}

impl<P: TreeParams> std::iter::FusedIterator for RangeIter<'_, P> {}

impl<P: TreeParams> Forest<P> {
    /// Lazy in-order iterator over all entries of version `t`.
    pub fn iter(&self, t: Root) -> Iter<'_, P> {
        let mut it = Iter {
            forest: self,
            stack: Vec::new(),
            remaining: self.size(t),
        };
        it.push_left(t);
        it
    }

    /// Lazy in-order iterator over the inclusive key range `[lo, hi]`.
    pub fn range_iter<'a>(&'a self, t: Root, lo: &'a P::K, hi: &'a P::K) -> RangeIter<'a, P> {
        self.range_iter_bounds(t, Bound::Included(lo), Bound::Included(hi))
    }

    /// Lazy in-order iterator with explicit bounds.
    pub fn range_iter_bounds<'a>(
        &'a self,
        t: Root,
        lo: Bound<&'a P::K>,
        hi: Bound<&'a P::K>,
    ) -> RangeIter<'a, P> {
        let mut it = RangeIter {
            forest: self,
            stack: Vec::new(),
            hi,
        };
        it.push_left_from(t, lo);
        it
    }

    /// Lazy iterator over keys only.
    pub fn keys(&self, t: Root) -> impl Iterator<Item = &P::K> + '_ {
        self.iter(t).map(|(k, _)| k)
    }

    /// Lazy iterator over values only, in key order.
    pub fn values(&self, t: Root) -> impl Iterator<Item = &P::V> + '_ {
        self.iter(t).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::U64Map;

    fn build(f: &Forest<U64Map>, keys: impl Iterator<Item = u64>) -> Root {
        let mut t = f.empty();
        for k in keys {
            t = f.insert(t, k, k * 10);
        }
        t
    }

    #[test]
    fn iter_yields_sorted_entries() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, (0..500).map(|k| (k * 379) % 500));
        let got: Vec<u64> = f.iter(t).map(|(k, _)| *k).collect();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        assert_eq!(f.iter(t).len(), 500);
        f.release(t);
    }

    #[test]
    fn iter_empty_and_singleton() {
        let f: Forest<U64Map> = Forest::new();
        assert_eq!(f.iter(f.empty()).count(), 0);
        let t = f.insert(f.empty(), 7, 70);
        assert_eq!(f.iter(t).collect::<Vec<_>>(), vec![(&7, &70)]);
        f.release(t);
    }

    #[test]
    fn size_hint_is_exact_throughout() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..100);
        let mut it = f.iter(t);
        for left in (0..100usize).rev() {
            it.next().unwrap();
            assert_eq!(it.size_hint(), (left, Some(left)));
        }
        assert!(it.next().is_none());
        f.release(t);
    }

    #[test]
    fn range_iter_matches_range_for_each() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, (0..300).map(|k| k * 2));
        for (lo, hi) in [
            (0u64, 598u64),
            (5, 5),
            (6, 6),
            (100, 200),
            (599, 1000),
            (301, 250),
        ] {
            let mut want = Vec::new();
            f.range_for_each(t, &lo, &hi, &mut |k, _| want.push(*k));
            let got: Vec<u64> = f.range_iter(t, &lo, &hi).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range [{lo},{hi}]");
        }
        f.release(t);
    }

    #[test]
    fn range_iter_exclusive_and_unbounded() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..50);
        use Bound::*;
        let got: Vec<u64> = f
            .range_iter_bounds(t, Excluded(&10), Excluded(&15))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![11, 12, 13, 14]);
        let got: Vec<u64> = f
            .range_iter_bounds(t, Unbounded, Included(&3))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let got: Vec<u64> = f
            .range_iter_bounds(t, Included(&47), Unbounded)
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![47, 48, 49]);
        f.release(t);
    }

    #[test]
    fn lazy_iterator_survives_snapshot_pattern() {
        let f: Forest<U64Map> = Forest::new();
        let v1 = build(&f, 0..100);
        f.retain(v1);
        let v2 = f.insert(v1, 1000, 1);
        // Iterate v1 lazily while v2 exists; v1 must not show key 1000.
        let keys: Vec<u64> = f.iter(v1).map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 100);
        assert!(!keys.contains(&1000));
        f.release(v1);
        f.release(v2);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn keys_values_projections() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..10);
        assert_eq!(
            f.keys(t).copied().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(
            f.values(t).copied().collect::<Vec<_>>(),
            (0..10).map(|k| k * 10).collect::<Vec<_>>()
        );
        f.release(t);
    }
}
