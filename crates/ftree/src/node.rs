//! Tree nodes as PLM tuples.

use mvcc_plm::{NodeId, OptNodeId, Tuple};

use crate::params::TreeParams;

/// A tree root: nil for the empty map. This is the "version root" of the
/// paper — the entire state visible to a transaction is whatever is
/// reachable from it.
pub type Root = OptNodeId;

/// One tree node: an immutable PLM tuple holding the entry, the cached
/// subtree size / height / augmentation, and two child links.
pub struct Node<P: TreeParams> {
    pub(crate) key: P::K,
    pub(crate) value: P::V,
    /// Monoid fold over this whole subtree.
    pub(crate) aug: P::Aug,
    /// Number of entries in this subtree.
    pub(crate) size: u32,
    /// AVL height (leaf = 1).
    pub(crate) height: u8,
    pub(crate) left: Root,
    pub(crate) right: Root,
}

impl<P: TreeParams> Node<P> {
    /// Key of this node.
    #[inline]
    pub fn key(&self) -> &P::K {
        &self.key
    }

    /// Value of this node.
    #[inline]
    pub fn value(&self) -> &P::V {
        &self.value
    }

    /// Cached subtree augmentation.
    #[inline]
    pub fn aug(&self) -> &P::Aug {
        &self.aug
    }

    /// Cached subtree size.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Left child.
    #[inline]
    pub fn left(&self) -> Root {
        self.left
    }

    /// Right child.
    #[inline]
    pub fn right(&self) -> Root {
        self.right
    }
}

impl<P: TreeParams> Tuple for Node<P> {
    #[inline]
    fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
        if let Some(l) = self.left.get() {
            f(l);
        }
        if let Some(r) = self.right.get() {
            f(r);
        }
    }
}
