//! Tree parameterisation: key/value types and the augmentation monoid —
//! plus the shared fork-join cutoff knob.

/// Default sequential cutoff for the parallel divide-and-conquer
/// operations (bulk set ops and map-reduce): subtrees at or below this
/// many entries recurse sequentially.
///
/// Re-tuned against the work-stealing pool (PR 4): one fork costs two
/// queue locks plus a latch handshake (sub-microsecond), while a
/// cutoff-sized bulk-op subtree costs hundreds of microseconds, so fork
/// overhead stays well under 1%. On the bulk bench (`BENCH_bulk.json`)
/// union at 10^6 keys measures single-digit-percent total parallel
/// overhead on a single core (the bench asserts < 10%), flat across
/// cutoffs 2048–8192 — so the cutoff stays at 2048, which keeps enough
/// forks in flight to feed wide pools at the sizes the paper evaluates.
pub(crate) const DEFAULT_PAR_CUTOFF: usize = 2048;

/// The active sequential cutoff: `MVCC_PAR_CUTOFF` if set to a positive
/// integer (read once — benches sweep it across processes), otherwise
/// [`DEFAULT_PAR_CUTOFF`].
#[inline]
pub(crate) fn par_cutoff() -> usize {
    static CUTOFF: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CUTOFF.get_or_init(|| {
        std::env::var("MVCC_PAR_CUTOFF")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c >= 1)
            .unwrap_or(DEFAULT_PAR_CUTOFF)
    })
}

/// Static description of a map type: key ordering, value type, and an
/// *augmentation* — a monoid folded over every subtree and cached in each
/// node, enabling O(log n) range queries (`aug_range`). This mirrors PAM's
//  `entry` concept.
pub trait TreeParams: Sized + Send + Sync + 'static {
    /// Key type (total order decides tree shape).
    type K: Ord + Clone + Send + Sync + 'static;
    /// Value type.
    type V: Clone + Send + Sync + 'static;
    /// Augmented value (monoid element).
    type Aug: Clone + Send + Sync + 'static;

    /// The monoid identity (augmentation of an empty tree).
    fn aug_id() -> Self::Aug;
    /// Lift one entry into the monoid.
    fn make_aug(k: &Self::K, v: &Self::V) -> Self::Aug;
    /// Associative combination.
    fn combine(a: &Self::Aug, b: &Self::Aug) -> Self::Aug;
}

/// Plain `u64 -> u64` map with no augmentation — the YCSB workloads.
pub struct U64Map;

impl TreeParams for U64Map {
    type K = u64;
    type V = u64;
    type Aug = ();

    #[inline]
    fn aug_id() -> Self::Aug {}
    #[inline]
    fn make_aug(_: &u64, _: &u64) -> Self::Aug {}
    #[inline]
    fn combine(_: &(), _: &()) -> Self::Aug {}
}

/// `u64 -> u64` map augmented with the **sum** of values — the range-sum
/// query workload of §7.1 (Table 2 / Figure 6).
pub struct SumU64Map;

impl TreeParams for SumU64Map {
    type K = u64;
    type V = u64;
    type Aug = u64;

    #[inline]
    fn aug_id() -> u64 {
        0
    }
    #[inline]
    fn make_aug(_: &u64, v: &u64) -> u64 {
        *v
    }
    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }
}

/// `u64 -> u64` map augmented with the **max** of values — the inverted
/// index's max-weight augmentation (§7.2).
pub struct MaxU64Map;

impl TreeParams for MaxU64Map {
    type K = u64;
    type V = u64;
    type Aug = u64;

    #[inline]
    fn aug_id() -> u64 {
        0
    }
    #[inline]
    fn make_aug(_: &u64, v: &u64) -> u64 {
        *v
    }
    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }
}

/// Generic wrapper that counts entries matching nothing in particular —
/// useful to verify that the cached subtree sizes agree with a monoid fold.
pub struct CountAug<P>(std::marker::PhantomData<P>);

impl<P: TreeParams> TreeParams for CountAug<P> {
    type K = P::K;
    type V = P::V;
    type Aug = u64;

    #[inline]
    fn aug_id() -> u64 {
        0
    }
    #[inline]
    fn make_aug(_: &P::K, _: &P::V) -> u64 {
        1
    }
    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monoid_laws_sum() {
        let id = SumU64Map::aug_id();
        for a in [0u64, 5, 17] {
            assert_eq!(SumU64Map::combine(&a, &id), a);
            assert_eq!(SumU64Map::combine(&id, &a), a);
        }
        // Associativity on a few triples.
        for (a, b, c) in [(1u64, 2u64, 3u64), (10, 0, 7)] {
            assert_eq!(
                SumU64Map::combine(&SumU64Map::combine(&a, &b), &c),
                SumU64Map::combine(&a, &SumU64Map::combine(&b, &c)),
            );
        }
    }

    #[test]
    fn monoid_laws_max() {
        let id = MaxU64Map::aug_id();
        for a in [0u64, 5, 17] {
            assert_eq!(MaxU64Map::combine(&a, &id), a);
        }
        assert_eq!(MaxU64Map::combine(&3, &9), 9);
    }
}
