//! # mvcc-ftree — functional augmented balanced trees over the PLM arena
//!
//! The paper's transactional system (§5) requires all shared state to be a
//! *purely functional* data structure: updates path-copy, old versions stay
//! intact, and a version is just a root pointer. This crate is the Rust
//! equivalent of the PAM library \[60\] the paper evaluates with: a
//! persistent, augmented, height-balanced ordered map with **join-based**
//! bulk algorithms ("Just Join for Parallel Ordered Sets" \[16\]) — `union`,
//! `intersection`, `difference`, `multi_insert`, `split`, `filter` — all of
//! which parallelize with fork-join (`rayon::join`) above a sequential
//! cutoff.
//!
//! ## Memory model
//!
//! Nodes are tuples in an [`mvcc_plm::Arena`]; every tree function follows
//! **move semantics on reference counts**: it *consumes* one owned
//! reference to each input root and returns one owned reference to the
//! output root. To keep using an input after an update (the snapshot
//! pattern), retain it first:
//!
//! ```
//! use mvcc_ftree::{Forest, U64Map};
//!
//! let f: Forest<U64Map> = Forest::new();
//! let v1 = f.insert(f.empty(), 1, 10);
//! f.retain(v1);                       // keep v1 alive across the update
//! let v2 = f.insert(v1, 2, 20);       // consumes one ref to v1
//! assert_eq!(f.get(v1, &2), None);    // old version unchanged
//! assert_eq!(f.get(v2, &2), Some(&20));
//! f.release(v1);
//! f.release(v2);
//! assert_eq!(f.arena().live(), 0);    // precise: nothing leaks
//! ```
//!
//! Read operations ([`Forest::get`], [`Forest::aug_range`], iteration)
//! never touch reference counts — this is what makes the paper's read
//! transactions *delay-free*: a query is exactly the sequential tree
//! search, with no instrumentation on the hot path.
//!
//! ## Balance
//!
//! Height-balanced (AVL-style) trees with O(|h1 − h2|) `join`, following
//! the Just Join paper. Every bulk operation is built from `join`/`split`
//! and is therefore work-efficient and (with rayon) has polylog span.
//!
//! ## Parallel bulk operations
//!
//! The divide-and-conquer operations (`union`, `intersection`,
//! `difference`, `multi_insert`, `multi_remove`, `filter`,
//! `build_sorted`, `map_reduce`, `map_values`) fork both halves onto a
//! **work-stealing pool** (`rayon::join`, the in-tree shim's real
//! fork-join runtime) whenever a subtree exceeds the sequential cutoff,
//! so their polylog span is realized as multicore speedup:
//!
//! * `MVCC_POOL_THREADS` sets the worker count (default: one worker per
//!   core). `MVCC_POOL_THREADS=1` is the supported escape hatch that
//!   forces the old fully-sequential execution — deterministic schedules
//!   for debugging, zero extra threads.
//! * `MVCC_PAR_CUTOFF` overrides the sequential cutoff (default 2048
//!   entries), mostly for benchmarking the fork overhead.
//!
//! Allocation stays sharded under parallelism: each stolen subtask
//! allocates and collects through its *executing* thread's arena shard
//! ([`Arena::task_ctx`]), while an explicit [`AllocCtx`] pin (e.g. a
//! session's, or the `*_in` bulk variants') keeps governing the
//! sequential regime on the calling thread. Results are identical to
//! sequential execution — the recursion tree and reassembly order do not
//! depend on the schedule; only the placement of freed/allocated slots
//! across shards does.

mod bulk;
mod forest;
mod iter;
mod node;
mod params;
mod query;
mod range;
mod reduce;

pub use forest::Forest;
pub use iter::{Iter, RangeIter};
pub use node::{Node, Root};
pub use params::{CountAug, MaxU64Map, SumU64Map, TreeParams, U64Map};

pub use mvcc_plm::{AllocCtx, Arena, NodeId, OptNodeId};
