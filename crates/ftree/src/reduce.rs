//! Parallel map-reduce over one tree version — PAM's `map_reduce` and
//! friends.
//!
//! A snapshot is immutable, so a fold over it parallelizes embarrassingly:
//! recurse on both children with `rayon::join` above a sequential cutoff
//! and combine with an associative operation. These are *read* operations
//! (no reference-count traffic), so a read transaction may use all cores
//! for one query — the inverted-index experiment (§7.2) runs each "and"
//! query as a parallel intersection this way.

use crate::forest::Forest;
use crate::node::Root;
use crate::params::{par_cutoff, TreeParams};

impl<P: TreeParams> Forest<P> {
    /// Fold `map` over every entry, combining with the associative
    /// `combine` (identity `id`); parallel above a cutoff. O(n) work,
    /// O(log² n) span.
    pub fn map_reduce<A>(
        &self,
        t: Root,
        map: &(impl Fn(&P::K, &P::V) -> A + Sync),
        combine: &(impl Fn(A, A) -> A + Sync),
        id: &(impl Fn() -> A + Sync),
    ) -> A
    where
        A: Send,
    {
        let Some(nid) = t.get() else { return id() };
        let n = self.node(nid);
        if n.size() as usize <= par_cutoff() {
            // Sequential fold, left to right.
            let l = self.map_reduce(n.left(), map, combine, id);
            let m = map(n.key(), n.value());
            let r = self.map_reduce(n.right(), map, combine, id);
            return combine(combine(l, m), r);
        }
        let (l, r) = rayon::join(
            || self.map_reduce(n.left(), map, combine, id),
            || self.map_reduce(n.right(), map, combine, id),
        );
        combine(combine(l, map(n.key(), n.value())), r)
    }

    /// Number of entries satisfying `pred`; parallel above a cutoff.
    pub fn count_if(&self, t: Root, pred: impl Fn(&P::K, &P::V) -> bool + Sync) -> usize {
        self.map_reduce(t, &|k, v| usize::from(pred(k, v)), &|a, b| a + b, &|| 0)
    }

    /// Does any entry satisfy `pred`? Short-circuits per subtree once a
    /// witness is found (sequential early exit; parallel branches may
    /// overshoot by one subtree).
    pub fn any(&self, t: Root, pred: impl Fn(&P::K, &P::V) -> bool + Sync) -> bool {
        self.any_rec(t, &pred)
    }

    fn any_rec<F: Fn(&P::K, &P::V) -> bool + Sync>(&self, t: Root, pred: &F) -> bool {
        let Some(nid) = t.get() else { return false };
        let n = self.node(nid);
        if n.size() as usize <= par_cutoff() {
            return self.any_rec(n.left(), pred)
                || pred(n.key(), n.value())
                || self.any_rec(n.right(), pred);
        }
        let (l, r) = rayon::join(
            || self.any_rec(n.left(), pred),
            || self.any_rec(n.right(), pred),
        );
        l || r || pred(n.key(), n.value())
    }

    /// Every entry satisfies `pred`?
    pub fn all(&self, t: Root, pred: impl Fn(&P::K, &P::V) -> bool + Sync) -> bool {
        !self.any(t, |k, v| !pred(k, v))
    }

    /// Build a new version with every value rewritten by `f` (keys and
    /// shape unchanged, augmentations recomputed). Consumes `t`. O(n)
    /// work — this path-copies the *entire* tree, as any whole-map update
    /// must.
    pub fn map_values(&self, t: Root, f: impl Fn(&P::K, &P::V) -> P::V + Sync) -> Root {
        self.map_values_rec(t, &f)
    }

    fn map_values_rec<F: Fn(&P::K, &P::V) -> P::V + Sync>(&self, t: Root, f: &F) -> Root {
        let Some(nid) = t.get() else { return t };
        // Like bulk.rs's maybe_join: only fork (and per-task re-pin) on
        // a pool that actually has workers, so sequential mode keeps
        // the caller's pin over the whole rewrite.
        let par = self.size(t) > par_cutoff() && rayon::pool::current_num_threads() > 1;
        let (l, k, v, r) = self.expose_owned(nid);
        let nv = f(&k, &v);
        let (nl, nr) = if par {
            // Allocating subtasks re-pin to their executing thread's own
            // shard (see `maybe_join` in bulk.rs); the read-only folds
            // above need no context.
            rayon::join(
                || self.with_task_ctx(|| self.map_values_rec(l, f)),
                || self.with_task_ctx(|| self.map_values_rec(r, f)),
            )
        } else {
            (self.map_values_rec(l, f), self.map_values_rec(r, f))
        };
        // Shape is preserved, so a plain `make` keeps the balance.
        Root::some(self.make(nl, k, nv, nr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SumU64Map, U64Map};

    fn build(f: &Forest<U64Map>, n: u64) -> Root {
        let mut t = f.empty();
        for k in 0..n {
            t = f.insert(t, k, k);
        }
        t
    }

    #[test]
    fn map_reduce_sum_matches_iterator() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 3000); // exceeds the parallel cutoff
        let sum = f.map_reduce(t, &|_, v| *v, &|a, b| a + b, &|| 0u64);
        assert_eq!(sum, (0..3000).sum::<u64>());
        assert_eq!(
            f.map_reduce(f.empty(), &|_, v| *v, &|a, b| a + b, &|| 0u64),
            0
        );
        f.release(t);
    }

    #[test]
    fn map_reduce_ordered_concat() {
        // A non-commutative monoid proves left-to-right combination order.
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 10);
        let s = f.map_reduce(t, &|k, _| k.to_string(), &|a, b| a + &b, &String::new);
        assert_eq!(s, "0123456789");
        f.release(t);
    }

    #[test]
    fn count_any_all() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 5000);
        assert_eq!(f.count_if(t, |k, _| k % 5 == 0), 1000);
        assert!(f.any(t, |k, _| *k == 4999));
        assert!(!f.any(t, |k, _| *k == 5000));
        assert!(f.all(t, |k, v| k == v));
        assert!(!f.all(t, |k, _| *k < 4999));
        f.release(t);
    }

    #[test]
    fn map_values_rewrites_and_preserves_snapshot() {
        let f: Forest<SumU64Map> = Forest::new();
        let mut t = f.empty();
        for k in 0..4000u64 {
            t = f.insert(t, k, 1);
        }
        f.retain(t);
        let doubled = f.map_values(t, |_, v| v * 2);
        assert_eq!(f.aug_total(t), 4000, "snapshot unchanged");
        assert_eq!(f.aug_total(doubled), 8000, "augmentation recomputed");
        assert_eq!(f.size(doubled), 4000);
        f.check_invariants(doubled);
        f.release(t);
        f.release(doubled);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn map_values_empty() {
        let f: Forest<U64Map> = Forest::new();
        assert!(f.map_values(f.empty(), |_, v| *v).is_none());
    }
}
