//! Rank- and range-structured operations: `split_rank`, `take`, `drop`,
//! `range_tree`, `remove_range`, `symmetric_difference`.
//!
//! All are PAM-surface operations built on the join-based core, following
//! the same ownership convention: one owned reference consumed per input
//! root, one owned result returned, discarded subtrees collected eagerly
//! so GC stays precise even mid-operation.

use crate::forest::Forest;
use crate::node::Root;
use crate::params::TreeParams;
use mvcc_plm::OptNodeId;

impl<P: TreeParams> Forest<P> {
    /// Split by **rank**: `(first i entries, the rest)`. If `i ≥ size`,
    /// the right part is empty. O(log n). Consumes `t`.
    pub fn split_rank(&self, t: Root, i: usize) -> (Root, Root) {
        let Some(id) = t.get() else {
            return (OptNodeId::NONE, OptNodeId::NONE);
        };
        if i == 0 {
            return (OptNodeId::NONE, t);
        }
        let (l, k, v, r) = self.expose_owned(id);
        let ls = self.size(l);
        if i <= ls {
            let (a, b) = self.split_rank(l, i);
            (a, self.join(b, k, v, r))
        } else {
            let (a, b) = self.split_rank(r, i - ls - 1);
            (self.join(l, k, v, a), b)
        }
    }

    /// The first `i` entries (in key order). Consumes `t`.
    pub fn take(&self, t: Root, i: usize) -> Root {
        let (a, b) = self.split_rank(t, i);
        self.release(b);
        a
    }

    /// Everything but the first `i` entries. Consumes `t`.
    pub fn drop_first(&self, t: Root, i: usize) -> Root {
        let (a, b) = self.split_rank(t, i);
        self.release(a);
        b
    }

    /// The sub-map of entries with keys in `[lo, hi]` (inclusive), as its
    /// own tree. O(log n) plus the output's build cost. Consumes `t`.
    pub fn range_tree(&self, t: Root, lo: &P::K, hi: &P::K) -> Root {
        if lo > hi {
            self.release(t);
            return OptNodeId::NONE;
        }
        let (below, at_lo, rest) = self.split(t, lo);
        self.release(below);
        let (mid, at_hi, above) = self.split(rest, hi);
        self.release(above);
        let mid = match at_lo {
            Some((k, v)) => self.join(OptNodeId::NONE, k, v, mid),
            None => mid,
        };
        match at_hi {
            Some((k, v)) => self.join(mid, k, v, OptNodeId::NONE),
            None => mid,
        }
    }

    /// Remove every entry with key in `[lo, hi]` (inclusive). O(log n)
    /// plus the collected garbage. Consumes `t`.
    pub fn remove_range(&self, t: Root, lo: &P::K, hi: &P::K) -> Root {
        if lo > hi {
            return t;
        }
        let (below, _at_lo, rest) = self.split(t, lo);
        let (mid, _at_hi, above) = self.split(rest, hi);
        self.release(mid);
        self.join2(below, above)
    }

    /// Entries whose key appears in **exactly one** of `a`, `b` (values
    /// come from whichever side held the key). Consumes both roots.
    pub fn symmetric_difference(&self, a: Root, b: Root) -> Root {
        if a.is_none() {
            return b;
        }
        if b.is_none() {
            return a;
        }
        let (bl, bk, bv, br) = self.expose_owned(b.unwrap());
        let (al, m, ar) = self.split(a, &bk);
        let l = self.symmetric_difference(al, bl);
        let r = self.symmetric_difference(ar, br);
        match m {
            Some(_) => self.join2(l, r),
            None => self.join(l, bk, bv, r),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Forest, U64Map};
    use mvcc_plm::OptNodeId;

    fn build(f: &Forest<U64Map>, keys: impl IntoIterator<Item = u64>) -> crate::Root {
        let mut t = f.empty();
        for k in keys {
            t = f.insert(t, k, k * 10);
        }
        t
    }

    fn keys_of(f: &Forest<U64Map>, t: crate::Root) -> Vec<u64> {
        f.to_vec(t).into_iter().map(|(k, _)| k).collect()
    }

    #[test]
    fn split_rank_partitions_in_order() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..20);
        let (a, b) = f.split_rank(t, 7);
        assert_eq!(keys_of(&f, a), (0..7).collect::<Vec<_>>());
        assert_eq!(keys_of(&f, b), (7..20).collect::<Vec<_>>());
        assert_eq!(f.check_invariants(a), 7);
        assert_eq!(f.check_invariants(b), 13);
        f.release(a);
        f.release(b);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn split_rank_edges() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..5);
        let (a, b) = f.split_rank(t, 0);
        assert_eq!(f.size(a), 0);
        assert_eq!(f.size(b), 5);
        let (c, d) = f.split_rank(b, 99);
        assert_eq!(f.size(c), 5);
        assert_eq!(d, OptNodeId::NONE);
        f.release(c);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn take_and_drop_complement() {
        let f: Forest<U64Map> = Forest::new();
        for i in [0usize, 1, 5, 16, 17] {
            let t = build(&f, 0..17);
            f.retain(t);
            let head = f.take(t, i);
            let tail = f.drop_first(t, i);
            let mut all = keys_of(&f, head);
            all.extend(keys_of(&f, tail));
            assert_eq!(all, (0..17).collect::<Vec<_>>(), "i={i}");
            f.release(head);
            f.release(tail);
            assert_eq!(f.arena().live(), 0);
        }
    }

    #[test]
    fn range_tree_inclusive_bounds() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, (0..40).map(|k| k * 2)); // evens 0..78
        let sub = f.range_tree(t, &10, &20);
        assert_eq!(keys_of(&f, sub), vec![10, 12, 14, 16, 18, 20]);
        f.check_invariants(sub);
        f.release(sub);
        assert_eq!(f.arena().live(), 0);

        // Bounds falling between keys.
        let t = build(&f, (0..40).map(|k| k * 2));
        let sub = f.range_tree(t, &11, &19);
        assert_eq!(keys_of(&f, sub), vec![12, 14, 16, 18]);
        f.release(sub);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn range_tree_empty_and_inverted() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..10);
        let sub = f.range_tree(t, &7, &3);
        assert_eq!(sub, OptNodeId::NONE);
        assert_eq!(f.arena().live(), 0, "inverted range releases everything");
    }

    #[test]
    fn remove_range_drops_exactly_the_span() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..30);
        let t = f.remove_range(t, &10, &19);
        let mut expect: Vec<u64> = (0..10).collect();
        expect.extend(20..30);
        assert_eq!(keys_of(&f, t), expect);
        f.check_invariants(t);
        // Precision: the 10 removed entries' tuples are gone.
        assert_eq!(f.size(t), 20);
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn remove_range_misses_are_noops() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, (0..10).map(|k| k * 10)); // keys 0,10,...,90
        let t = f.remove_range(t, &11, &19); // falls between keys: no-op
        assert_eq!(keys_of(&f, t), (0..10).map(|k| k * 10).collect::<Vec<_>>());
        f.check_invariants(t);
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn symmetric_difference_vs_model() {
        let f: Forest<U64Map> = Forest::new();
        let a = build(&f, [1, 2, 3, 5, 8, 13]);
        let b = build(&f, [2, 3, 4, 8, 21]);
        let s = f.symmetric_difference(a, b);
        assert_eq!(keys_of(&f, s), vec![1, 4, 5, 13, 21]);
        f.check_invariants(s);
        f.release(s);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn symmetric_difference_disjoint_is_union() {
        let f: Forest<U64Map> = Forest::new();
        let a = build(&f, [1, 3, 5]);
        let b = build(&f, [2, 4, 6]);
        let s = f.symmetric_difference(a, b);
        assert_eq!(keys_of(&f, s), vec![1, 2, 3, 4, 5, 6]);
        f.release(s);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn symmetric_difference_identical_is_empty() {
        let f: Forest<U64Map> = Forest::new();
        let a = build(&f, 0..12);
        let b = build(&f, 0..12);
        let s = f.symmetric_difference(a, b);
        assert_eq!(s, OptNodeId::NONE);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn shared_snapshots_unaffected_by_range_ops() {
        let f: Forest<U64Map> = Forest::new();
        let t = build(&f, 0..50);
        f.retain(t); // snapshot
        let trimmed = f.remove_range(t, &10, &39);
        assert_eq!(f.size(trimmed), 20);
        assert_eq!(f.size(t), 50, "snapshot intact after remove_range");
        assert_eq!(keys_of(&f, t), (0..50).collect::<Vec<_>>());
        f.release(trimmed);
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }
}
