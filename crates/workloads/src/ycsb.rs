//! YCSB-style operation mixes (Figure 7: workloads A, B, C).

use rand::Rng;

use crate::zipf::ScrambledZipf;

/// A single generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of a key.
    Read(u64),
    /// Update (blind write) of a key.
    Update(u64, u64),
}

/// Read/update mix of a YCSB workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Workload A: 50% reads / 50% updates.
    A,
    /// Workload B: 95% reads / 5% updates.
    B,
    /// Workload C: 100% reads.
    C,
}

impl Mix {
    /// Fraction of operations that are reads.
    pub fn read_fraction(self) -> f64 {
        match self {
            Mix::A => 0.5,
            Mix::B => 0.95,
            Mix::C => 1.0,
        }
    }

    /// Figure 7 label.
    pub fn name(self) -> &'static str {
        match self {
            Mix::A => "A (50/50)",
            Mix::B => "B (95/5)",
            Mix::C => "C (100/0)",
        }
    }

    /// The three workloads in figure order.
    pub const ALL: [Mix; 3] = [Mix::A, Mix::B, Mix::C];
}

/// Configuration of a YCSB run.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    /// Key-space size (initial dataset size).
    pub keyspace: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Read/update mix.
    pub mix: Mix,
}

impl YcsbConfig {
    /// Standard configuration for a given mix and dataset size.
    pub fn new(mix: Mix, keyspace: u64) -> Self {
        YcsbConfig {
            keyspace,
            theta: 0.99,
            mix,
        }
    }
}

/// Stateful per-thread generator of YCSB operations.
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    keys: ScrambledZipf,
    counter: u64,
}

impl YcsbGenerator {
    /// Build a generator (per thread — sampling is not synchronized).
    pub fn new(cfg: YcsbConfig) -> Self {
        YcsbGenerator {
            cfg,
            keys: ScrambledZipf::new(cfg.keyspace, cfg.theta),
            counter: 0,
        }
    }

    /// Draw the next operation.
    pub fn next_op<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Op {
        let key = self.keys.sample(rng);
        if rng.gen::<f64>() < self.cfg.mix.read_fraction() {
            Op::Read(key)
        } else {
            self.counter += 1;
            Op::Update(key, self.counter)
        }
    }

    /// The keys `0..keyspace` used to preload the structure.
    pub fn initial_keys(&self) -> impl Iterator<Item = u64> {
        0..self.cfg.keyspace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_ratios_roughly_hold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for mix in Mix::ALL {
            let mut g = YcsbGenerator::new(YcsbConfig::new(mix, 10_000));
            let trials = 20_000;
            let reads = (0..trials)
                .filter(|_| matches!(g.next_op(&mut rng), Op::Read(_)))
                .count();
            let frac = reads as f64 / trials as f64;
            assert!(
                (frac - mix.read_fraction()).abs() < 0.02,
                "{mix:?}: observed read fraction {frac}"
            );
        }
    }

    #[test]
    fn keys_within_keyspace() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut g = YcsbGenerator::new(YcsbConfig::new(Mix::A, 100));
        for _ in 0..1000 {
            let k = match g.next_op(&mut rng) {
                Op::Read(k) | Op::Update(k, _) => k,
            };
            assert!(k < 100);
        }
    }

    #[test]
    fn workload_c_never_updates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut g = YcsbGenerator::new(YcsbConfig::new(Mix::C, 1000));
        assert!((0..5000).all(|_| matches!(g.next_op(&mut rng), Op::Read(_))));
    }
}
