//! # mvcc-workloads — workload generators and measurement harness
//!
//! Everything the paper's evaluation (§7) needs to drive a data structure:
//!
//! * [`zipf`] — Zipfian key distribution (the YCSB default, θ = 0.99 skew)
//!   with the Gray et al. rejection-free sampler, plus a scrambled variant
//!   so hot keys spread across the key space;
//! * [`ycsb`] — the YCSB-A/B/C operation mixes (update-heavy 50/50,
//!   read-heavy 95/5, read-only) used in Figure 7;
//! * [`corpus`] — a synthetic document corpus with Zipf-distributed term
//!   frequencies and document lengths, substituting for the Wikipedia dump
//!   in the Table 3 inverted-index experiment (see DESIGN.md);
//! * [`harness`] — time-boxed multi-threaded throughput measurement with
//!   per-thread counters and Mop/s reporting;
//! * [`oversub`] — the session-pool oversubscription workload: more
//!   client threads than pool capacity, open- or closed-loop arrivals,
//!   acquire-wait tail-latency percentiles.

pub mod corpus;
pub mod harness;
pub mod oversub;
pub mod ycsb;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig, Document};
pub use harness::{run_for, run_for_collect, ThroughputReport};
pub use oversub::{
    run_oversubscribed, run_oversubscribed_with, Arrivals, LatencySummary, OversubReport,
};
pub use ycsb::{Mix, Op, YcsbConfig, YcsbGenerator};
pub use zipf::{ScrambledZipf, Zipf};
