//! Zipfian distribution over `0..n` — the skewed access pattern YCSB uses
//! "to mimic real-world access patterns" (§7.2).
//!
//! Implementation follows Gray et al., "Quickly Generating Billion-Record
//! Synthetic Databases" (the algorithm YCSB itself uses): constant-time
//! sampling after an O(n) zeta precomputation.

use rand::Rng;

/// Zipfian sampler over `0..n` with skew `theta` (0 < theta < 1; YCSB
/// default 0.99). Item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Precompute the sampler for `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// YCSB's default skew.
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for the sizes we use; the generators are constructed
        // once per run.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `0..n` (0 = hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Zipfian sampler whose ranks are scattered over the key space with a
/// Fibonacci-hash scramble, so hot keys are not adjacent (YCSB's
/// "scrambled zipfian").
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    /// Sampler over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipf {
            inner: Zipf::new(n, theta),
        }
    }

    /// YCSB's default skew.
    pub fn ycsb(n: u64) -> Self {
        ScrambledZipf {
            inner: Zipf::ycsb(n),
        }
    }

    /// Draw a key in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        // Splitmix-style scramble, folded back into range.
        let mut x = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x % self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1u64, 2, 10, 1000] {
            let z = Zipf::ycsb(n);
            for _ in 0..1000 {
                assert!(z.sample(&mut rng) < n);
            }
            let s = ScrambledZipf::ycsb(n);
            for _ in 0..1000 {
                assert!(s.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn skew_concentrates_on_small_ranks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let z = Zipf::new(100_000, 0.99);
        let trials = 50_000;
        let hot = (0..trials)
            .filter(|_| z.sample(&mut rng) < 100) // top 0.1% of keys
            .count();
        // Under θ=0.99 the head carries a large fraction; uniform would
        // give ~50 hits.
        assert!(hot > trials / 10, "only {hot}/{trials} hits in hot set");
    }

    #[test]
    fn rank_frequencies_decrease() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let z = Zipf::new(1000, 0.9);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[0] > 10 * counts[500].max(1));
    }

    #[test]
    fn scramble_spreads_hot_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = ScrambledZipf::new(1_000_000, 0.99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(s.sample(&mut rng));
        }
        // Hot keys must not cluster at the low end of the space.
        let low = seen.iter().filter(|k| **k < 1000).count();
        assert!(
            low < seen.len() / 4,
            "{low} of {} keys clustered",
            seen.len()
        );
    }
}
