//! Time-boxed throughput measurement.
//!
//! The paper's §7.1 runs "for 15 seconds" with one writer and many query
//! threads, reporting millions of operations per second per class. This
//! module provides the shared scaffolding: spawn `threads` workers, run
//! each in a loop until the deadline, collect per-thread operation counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Result of a [`run_for`] measurement.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Wall-clock duration actually measured.
    pub elapsed: Duration,
    /// Operations completed per thread.
    pub per_thread: Vec<u64>,
}

impl ThroughputReport {
    /// Total operations across threads.
    pub fn total_ops(&self) -> u64 {
        self.per_thread.iter().sum()
    }

    /// Throughput in millions of operations per second (the paper's
    /// Mop/s).
    pub fn mops(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run `threads` workers for `duration`. Each worker `t` repeatedly calls
/// `work(t, iteration)`, which returns how many operations it completed;
/// workers poll the deadline between calls. Returns per-thread totals.
///
/// `work` receives the worker index so callers can give thread 0 a
/// different role (e.g. the single writer of §7.1).
pub fn run_for(
    threads: usize,
    duration: Duration,
    work: impl Fn(usize, u64) -> u64 + Sync,
) -> ThroughputReport {
    run_for_collect(threads, duration, |_| (), |t, iter, ()| work(t, iter)).0
}

/// Like [`run_for`], but each worker owns a mutable state value built by
/// `init(t)` — a latency-sample buffer, an RNG, a leased session — that
/// `work` threads through every iteration. The final states come back
/// next to the report so callers can aggregate whatever the workers
/// recorded (the `wal` bench collects per-commit latency samples this
/// way).
pub fn run_for_collect<T: Send>(
    threads: usize,
    duration: Duration,
    init: impl Fn(usize) -> T + Sync,
    work: impl Fn(usize, u64, &mut T) -> u64 + Sync,
) -> (ThroughputReport, Vec<T>) {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let (per_thread, states) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stop = &stop;
                let work = &work;
                let init = &init;
                s.spawn(move || {
                    let mut state = init(t);
                    let mut ops = 0u64;
                    let mut iter = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ops += work(t, iter, &mut state);
                        iter += 1;
                    }
                    (ops, state)
                })
            })
            .collect();
        // Deadline keeper runs on the scope's own thread.
        while start.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(1).min(duration));
        }
        stop.store(true, Ordering::Relaxed);
        let mut ops = Vec::with_capacity(threads);
        let mut states = Vec::with_capacity(threads);
        for h in handles {
            let (o, state) = h.join().unwrap();
            ops.push(o);
            states.push(state);
        }
        (ops, states)
    });
    (
        ThroughputReport {
            elapsed: start.elapsed(),
            per_thread,
        },
        states,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_threads() {
        let report = run_for(3, Duration::from_millis(50), |_t, _i| 1);
        assert_eq!(report.per_thread.len(), 3);
        assert!(report.total_ops() > 0);
        assert!(report.elapsed >= Duration::from_millis(50));
        assert!(report.mops() > 0.0);
    }

    #[test]
    fn worker_index_passed_through() {
        use std::sync::atomic::AtomicU64;
        let seen = [const { AtomicU64::new(0) }; 4];
        run_for(4, Duration::from_millis(20), |t, _| {
            seen[t].fetch_add(1, Ordering::Relaxed);
            1
        });
        for s in &seen {
            assert!(s.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn ops_accumulate_from_return_value() {
        let report = run_for(1, Duration::from_millis(20), |_, _| 10);
        assert_eq!(report.total_ops() % 10, 0);
    }

    #[test]
    fn collect_returns_per_worker_state() {
        let (report, states) = run_for_collect(
            2,
            Duration::from_millis(20),
            |t| vec![t as u64],
            |_, iter, samples: &mut Vec<u64>| {
                samples.push(iter);
                1
            },
        );
        assert_eq!(states.len(), 2);
        for (t, samples) in states.iter().enumerate() {
            assert_eq!(samples[0], t as u64, "init state survives");
            assert_eq!(
                samples.len() as u64 - 1,
                report.per_thread[t],
                "one sample per counted op"
            );
        }
    }
}
