//! Oversubscription workload: more client threads than sessions.
//!
//! The session-pool work decouples logical sessions from the paper's
//! fixed process count `P`; this harness measures what that queueing
//! costs. `clients` threads (typically several times the pool capacity)
//! each repeatedly *acquire* a session, run some work on it, and drop it
//! — and the harness records how long every acquire waited, reporting
//! tail percentiles of the wait distribution.
//!
//! Three arrival models (see [`Arrivals`]):
//!
//! * **closed loop** — each client issues its next acquire immediately
//!   after finishing the previous one; the offered load self-throttles
//!   to the pool's service rate, so the wait tail reflects pure queue
//!   depth.
//! * **open loop, fixed interval** — each client *schedules* an acquire
//!   every `interval` (sleeping out the remainder of its slot, never
//!   skipping); if the pool falls behind, waits compound — the
//!   coordinated-omission-resistant view of tail latency.
//! * **open loop, Poisson** — like the fixed interval, but the gaps are
//!   exponentially distributed around a mean, so arrivals burst the way
//!   independent network clients do. Bursts are exactly what separates
//!   an admission queue's p99.9 from its p50.
//!
//! The harness is generic over what "a session" is (any `S`), so it
//! drives `mvcc-core`'s `SessionPool`/`Router` and `mvcc-net`'s
//! wire-protocol clients without this crate depending on them — see
//! `mvcc-bench`'s `oversub` and `net` binaries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Latency distribution summary over a set of samples, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples aggregated.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile — the burst tail; this is the number the
    /// admission-queue work is judged on.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a sample set (sorts in place; empty input is all-zero).
    pub fn from_ns(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_ns: 0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                p999_ns: 0,
                max_ns: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        LatencySummary {
            count,
            mean_ns: samples.iter().sum::<u64>() / count,
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            p999_ns: pct(0.999),
            max_ns: *samples.last().unwrap(),
        }
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1}us p50 {:.1}us p90 {:.1}us p99 {:.1}us p99.9 {:.1}us max {:.1}us ({} samples)",
            self.mean_ns as f64 / 1e3,
            self.p50_ns as f64 / 1e3,
            self.p90_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.p999_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
            self.count
        )
    }
}

/// How each client times its acquires (the arrival process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Next acquire immediately after the previous release.
    Closed,
    /// One acquire scheduled every `interval` from the client's start
    /// (deterministic open loop).
    Open(Duration),
    /// Open loop with exponentially distributed gaps of the given
    /// `mean` — a Poisson arrival process per client. `seed` makes the
    /// schedule reproducible; each client derives its own stream.
    OpenPoisson { mean: Duration, seed: u64 },
}

impl Arrivals {
    /// The schedule of a client's arrival offsets (from its start).
    /// `Closed` yields no scheduled times — arrivals are completions.
    /// Public so drivers that cannot use [`run_oversubscribed_with`]
    /// directly (e.g. network clients pacing socket requests) share the
    /// exact same arrival process.
    pub fn schedule(&self, client: usize, n: usize) -> Option<Vec<Duration>> {
        match *self {
            Arrivals::Closed => None,
            Arrivals::Open(interval) => Some((0..n).map(|i| interval * i as u32).collect()),
            Arrivals::OpenPoisson { mean, seed } => {
                // SplitMix-derived per-client stream; exponential gaps
                // via inversion: -mean·ln(1-u), u uniform in [0,1).
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mean_ns = mean.as_nanos() as f64;
                let mut at = Duration::ZERO;
                Some(
                    (0..n)
                        .map(|_| {
                            let due = at;
                            let u: f64 = rng.gen();
                            let gap = -mean_ns * (1.0 - u).ln();
                            at += Duration::from_nanos(gap as u64);
                            due
                        })
                        .collect(),
                )
            }
        }
    }
}

/// Result of a [`run_oversubscribed`] run.
#[derive(Debug, Clone)]
pub struct OversubReport {
    /// Client threads driven.
    pub clients: usize,
    /// Total sessions acquired (clients × acquires per client).
    pub acquires: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Distribution of per-acquire wait times.
    pub wait: LatencySummary,
}

/// Drive `clients` threads through `acquires_per_client` acquire → work →
/// release cycles each, measuring acquire-wait latency.
///
/// * `acquire(client)` blocks until a session is available and returns
///   it; the wait clock covers exactly this call.
/// * `work(&mut session, client, iteration)` runs inside the lease; the
///   session drops (releases) when it returns.
/// * `pacing` picks between [`Arrivals::Closed`] (`None`) and
///   [`Arrivals::Open`] (`Some(interval)`); for Poisson arrivals use
///   [`run_oversubscribed_with`] directly.
///
/// Every client completes all its acquires — an oversubscribed pool must
/// serve the excess by queueing, not by shedding.
pub fn run_oversubscribed<S, A, W>(
    clients: usize,
    acquires_per_client: usize,
    pacing: Option<Duration>,
    acquire: A,
    work: W,
) -> OversubReport
where
    A: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize, usize) + Sync,
{
    let arrivals = match pacing {
        None => Arrivals::Closed,
        Some(interval) => Arrivals::Open(interval),
    };
    run_oversubscribed_with(clients, acquires_per_client, arrivals, acquire, work)
}

/// [`run_oversubscribed`] with the arrival process spelled out — the
/// full-control entry point (notably [`Arrivals::OpenPoisson`]).
///
/// Open-loop arrivals that are already overdue run immediately but are
/// never skipped: a slow pool makes waits compound rather than thinning
/// the offered load (no coordinated omission).
pub fn run_oversubscribed_with<S, A, W>(
    clients: usize,
    acquires_per_client: usize,
    arrivals: Arrivals,
    acquire: A,
    work: W,
) -> OversubReport
where
    A: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize, usize) + Sync,
{
    let start = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let acquire = &acquire;
                let work = &work;
                let schedule = arrivals.schedule(c, acquires_per_client);
                s.spawn(move || {
                    let mut waits = Vec::with_capacity(acquires_per_client);
                    let base = Instant::now();
                    for i in 0..acquires_per_client {
                        if let Some(due) = schedule.as_ref().map(|sch| base + sch[i]) {
                            if let Some(slack) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(slack);
                            }
                        }
                        let t0 = Instant::now();
                        let mut session = acquire(c);
                        waits.push(t0.elapsed().as_nanos() as u64);
                        work(&mut session, c, i);
                    }
                    waits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    let mut all: Vec<u64> = per_client.into_iter().flatten().collect();
    OversubReport {
        clients,
        acquires: all.len() as u64,
        elapsed,
        wait: LatencySummary::from_ns(&mut all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn summary_percentiles_are_order_statistics() {
        let mut ns: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_ns(&mut ns);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 51); // round(99 * 0.5) = 50 -> value 51
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.p999_ns, 100); // round(99 * 0.999) = 99 -> value 100
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 50); // 5050 / 100, integer division
    }

    #[test]
    fn summary_of_nothing_is_zero() {
        let s = LatencySummary::from_ns(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn closed_loop_runs_every_acquire() {
        let acquired = AtomicUsize::new(0);
        let worked = AtomicUsize::new(0);
        let report = run_oversubscribed(
            4,
            25,
            None,
            |_c| {
                acquired.fetch_add(1, Ordering::Relaxed);
            },
            |_s, _c, _i| {
                worked.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(report.acquires, 100);
        assert_eq!(acquired.load(Ordering::Relaxed), 100);
        assert_eq!(worked.load(Ordering::Relaxed), 100);
        assert_eq!(report.wait.count, 100);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let t0 = Instant::now();
        let report = run_oversubscribed(
            2,
            5,
            Some(Duration::from_millis(2)),
            |_c| {},
            |_s, _c, _i| {},
        );
        // 5 arrivals spaced 2ms apart: the run cannot finish before the
        // last scheduled arrival at t = 4 * 2ms.
        assert!(t0.elapsed() >= Duration::from_millis(8));
        assert_eq!(report.acquires, 10);
    }

    #[test]
    fn poisson_schedule_is_reproducible_and_has_the_right_mean() {
        let arrivals = Arrivals::OpenPoisson {
            mean: Duration::from_micros(100),
            seed: 42,
        };
        let a = arrivals.schedule(3, 1000).unwrap();
        let b = arrivals.schedule(3, 1000).unwrap();
        assert_eq!(a, b, "same seed + client => same schedule");
        let other = arrivals.schedule(4, 1000).unwrap();
        assert_ne!(a, other, "clients draw distinct streams");
        assert_eq!(a[0], Duration::ZERO, "first arrival is immediate");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets are sorted");
        // 999 exponential gaps of mean 100us: the sample mean should be
        // within a generous factor of the target.
        let mean_ns = a.last().unwrap().as_nanos() as f64 / 999.0;
        assert!(
            (50_000.0..200_000.0).contains(&mean_ns),
            "sample mean gap {mean_ns}ns is far from the 100us target"
        );
    }

    #[test]
    fn poisson_arrivals_drive_every_acquire() {
        let report = run_oversubscribed_with(
            2,
            20,
            Arrivals::OpenPoisson {
                mean: Duration::from_micros(50),
                seed: 7,
            },
            |_c| {},
            |_s, _c, _i| {},
        );
        assert_eq!(report.acquires, 40);
        assert_eq!(report.wait.count, 40);
    }

    #[test]
    fn client_and_iteration_indices_flow_through() {
        let seen = AtomicUsize::new(0);
        run_oversubscribed(
            3,
            4,
            None,
            |c| c,
            |s, c, i| {
                assert_eq!(*s, c);
                assert!(i < 4);
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 12);
    }
}
