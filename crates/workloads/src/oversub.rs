//! Oversubscription workload: more client threads than sessions.
//!
//! The session-pool work decouples logical sessions from the paper's
//! fixed process count `P`; this harness measures what that queueing
//! costs. `clients` threads (typically several times the pool capacity)
//! each repeatedly *acquire* a session, run some work on it, and drop it
//! — and the harness records how long every acquire waited, reporting
//! tail percentiles of the wait distribution.
//!
//! Two arrival models:
//!
//! * **closed loop** (`pacing: None`) — each client issues its next
//!   acquire immediately after finishing the previous one; the offered
//!   load self-throttles to the pool's service rate, so the wait tail
//!   reflects pure queue depth.
//! * **open loop** (`pacing: Some(interval)`) — each client *schedules*
//!   an acquire every `interval` (sleeping out the remainder of its
//!   slot, never skipping); if the pool falls behind, waits compound —
//!   the coordinated-omission-resistant view of tail latency.
//!
//! The harness is generic over what "a session" is (any `S`), so it
//! drives `mvcc-core`'s `SessionPool`/`Router` without this crate
//! depending on them — see `mvcc-bench`'s `oversub` binary.

use std::time::{Duration, Instant};

/// Latency distribution summary over a set of samples, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples aggregated.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a sample set (sorts in place; empty input is all-zero).
    pub fn from_ns(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_ns: 0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                max_ns: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        LatencySummary {
            count,
            mean_ns: samples.iter().sum::<u64>() / count,
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            max_ns: *samples.last().unwrap(),
        }
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1}us p50 {:.1}us p90 {:.1}us p99 {:.1}us max {:.1}us ({} samples)",
            self.mean_ns as f64 / 1e3,
            self.p50_ns as f64 / 1e3,
            self.p90_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
            self.count
        )
    }
}

/// Result of a [`run_oversubscribed`] run.
#[derive(Debug, Clone)]
pub struct OversubReport {
    /// Client threads driven.
    pub clients: usize,
    /// Total sessions acquired (clients × acquires per client).
    pub acquires: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Distribution of per-acquire wait times.
    pub wait: LatencySummary,
}

/// Drive `clients` threads through `acquires_per_client` acquire → work →
/// release cycles each, measuring acquire-wait latency.
///
/// * `acquire(client)` blocks until a session is available and returns
///   it; the wait clock covers exactly this call.
/// * `work(&mut session, client, iteration)` runs inside the lease; the
///   session drops (releases) when it returns.
/// * `pacing` picks the arrival model (see the module docs).
///
/// Every client completes all its acquires — an oversubscribed pool must
/// serve the excess by queueing, not by shedding.
pub fn run_oversubscribed<S, A, W>(
    clients: usize,
    acquires_per_client: usize,
    pacing: Option<Duration>,
    acquire: A,
    work: W,
) -> OversubReport
where
    A: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize, usize) + Sync,
{
    let start = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let acquire = &acquire;
                let work = &work;
                s.spawn(move || {
                    let mut waits = Vec::with_capacity(acquires_per_client);
                    let base = Instant::now();
                    for i in 0..acquires_per_client {
                        if let Some(interval) = pacing {
                            // Open loop: arrival i is scheduled at
                            // base + i·interval; sleep out the remainder
                            // of the slot but never skip a scheduled
                            // arrival that is already overdue.
                            let due = base + interval * i as u32;
                            if let Some(slack) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(slack);
                            }
                        }
                        let t0 = Instant::now();
                        let mut session = acquire(c);
                        waits.push(t0.elapsed().as_nanos() as u64);
                        work(&mut session, c, i);
                    }
                    waits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    let mut all: Vec<u64> = per_client.into_iter().flatten().collect();
    OversubReport {
        clients,
        acquires: all.len() as u64,
        elapsed,
        wait: LatencySummary::from_ns(&mut all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn summary_percentiles_are_order_statistics() {
        let mut ns: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_ns(&mut ns);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 51); // round(99 * 0.5) = 50 -> value 51
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 50); // 5050 / 100, integer division
    }

    #[test]
    fn summary_of_nothing_is_zero() {
        let s = LatencySummary::from_ns(&mut []);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn closed_loop_runs_every_acquire() {
        let acquired = AtomicUsize::new(0);
        let worked = AtomicUsize::new(0);
        let report = run_oversubscribed(
            4,
            25,
            None,
            |_c| {
                acquired.fetch_add(1, Ordering::Relaxed);
            },
            |_s, _c, _i| {
                worked.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(report.acquires, 100);
        assert_eq!(acquired.load(Ordering::Relaxed), 100);
        assert_eq!(worked.load(Ordering::Relaxed), 100);
        assert_eq!(report.wait.count, 100);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let t0 = Instant::now();
        let report = run_oversubscribed(
            2,
            5,
            Some(Duration::from_millis(2)),
            |_c| {},
            |_s, _c, _i| {},
        );
        // 5 arrivals spaced 2ms apart: the run cannot finish before the
        // last scheduled arrival at t = 4 * 2ms.
        assert!(t0.elapsed() >= Duration::from_millis(8));
        assert_eq!(report.acquires, 10);
    }

    #[test]
    fn client_and_iteration_indices_flow_through() {
        let seen = AtomicUsize::new(0);
        run_oversubscribed(
            3,
            4,
            None,
            |c| c,
            |s, c, i| {
                assert_eq!(*s, c);
                assert!(i < 4);
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 12);
    }
}
