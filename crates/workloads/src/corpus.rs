//! Synthetic document corpus for the inverted-index experiment (Table 3).
//!
//! The paper indexes a Wikipedia dump (8.13M documents, 1.6·10⁹ word-doc
//! pairs); offline we substitute a generator that preserves the properties
//! the experiment exercises (see DESIGN.md):
//!
//! * term frequencies follow a Zipf law → posting-list lengths are heavily
//!   skewed (a few huge lists, a long tail of tiny ones);
//! * document lengths are skewed as well (Zipf-ish);
//! * each (term, document) pair carries a weight used for ranking.

use rand::Rng;

use crate::zipf::Zipf;

/// A document: a set of distinct term ids with weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Document identifier.
    pub id: u64,
    /// Distinct `(term, weight)` pairs.
    pub terms: Vec<(u64, u64)>,
}

/// Corpus generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Vocabulary size (number of distinct terms).
    pub vocabulary: u64,
    /// Zipf skew of term popularity.
    pub term_theta: f64,
    /// Minimum distinct terms per document.
    pub min_terms: usize,
    /// Maximum distinct terms per document.
    pub max_terms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            vocabulary: 50_000,
            term_theta: 0.8,
            min_terms: 10,
            max_terms: 200,
            seed: 0xC0FFEE,
        }
    }
}

/// A stream of synthetic documents.
pub struct Corpus {
    cfg: CorpusConfig,
    terms: Zipf,
    rng: rand::rngs::StdRng,
    next_id: u64,
}

impl Corpus {
    /// Build a corpus generator.
    pub fn new(cfg: CorpusConfig) -> Self {
        use rand::SeedableRng;
        Corpus {
            terms: Zipf::new(cfg.vocabulary, cfg.term_theta),
            rng: rand::rngs::StdRng::seed_from_u64(cfg.seed),
            next_id: 0,
            cfg,
        }
    }

    /// Generate the next document.
    pub fn next_doc(&mut self) -> Document {
        let id = self.next_id;
        self.next_id += 1;
        // Skewed document length: inverse-power-law over the configured
        // range.
        let span = (self.cfg.max_terms - self.cfg.min_terms).max(1);
        let u: f64 = self.rng.gen::<f64>().max(1e-9);
        let len = self.cfg.min_terms + ((u.powf(2.0)) * span as f64) as usize;
        let mut terms: Vec<(u64, u64)> = Vec::with_capacity(len);
        let mut seen = std::collections::HashSet::with_capacity(len * 2);
        while terms.len() < len {
            let t = self.terms.sample(&mut self.rng);
            if seen.insert(t) {
                // Weight: per-pair relevance in [1, 1000].
                let w = self.rng.gen_range(1..=1000u64);
                terms.push((t, w));
            }
        }
        Document { id, terms }
    }

    /// Generate `n` documents.
    pub fn take(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_doc()).collect()
    }

    /// Two frequent terms usable as an "and"-query with non-trivial
    /// intersection (the paper "carefully chooses query terms such that
    /// the output is reasonably valid").
    pub fn query_terms(&mut self) -> (u64, u64) {
        // Popular ranks have the longest posting lists.
        let a = self.terms.sample(&mut self.rng) % 50;
        let mut b = self.terms.sample(&mut self.rng) % 50;
        if b == a {
            b = (a + 1) % 50;
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_have_distinct_terms_and_increasing_ids() {
        let mut c = Corpus::new(CorpusConfig::default());
        let docs = c.take(50);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id, i as u64);
            let mut ts: Vec<u64> = d.terms.iter().map(|(t, _)| *t).collect();
            let n = ts.len();
            ts.sort_unstable();
            ts.dedup();
            assert_eq!(ts.len(), n, "duplicate terms in doc {i}");
            assert!(n >= 10);
        }
    }

    #[test]
    fn term_popularity_is_skewed() {
        let mut c = Corpus::new(CorpusConfig {
            vocabulary: 1000,
            ..CorpusConfig::default()
        });
        let mut counts = std::collections::HashMap::<u64, u32>::new();
        for d in c.take(300) {
            for (t, _) in d.terms {
                *counts.entry(t).or_default() += 1;
            }
        }
        let hot = counts.get(&0).copied().unwrap_or(0);
        let cold = counts.get(&900).copied().unwrap_or(0);
        assert!(
            hot > cold,
            "term 0 should dominate term 900 ({hot} vs {cold})"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Corpus::new(CorpusConfig::default()).take(5);
        let b = Corpus::new(CorpusConfig::default()).take(5);
        assert_eq!(a, b);
    }

    #[test]
    fn query_terms_distinct() {
        let mut c = Corpus::new(CorpusConfig::default());
        for _ in 0..100 {
            let (a, b) = c.query_terms();
            assert_ne!(a, b);
        }
    }
}
