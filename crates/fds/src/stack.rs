//! Functional stack (cons list) over the PLM arena.

use mvcc_plm::{Arena, NodeId, OptNodeId, Tuple};

use crate::versioned::VersionRoots;

/// One cons cell.
pub struct StackNode<V: Clone + Send + Sync + 'static> {
    value: V,
    next: OptNodeId,
    /// Cached length of the list hanging off this cell.
    len: u32,
}

impl<V: Clone + Send + Sync + 'static> Tuple for StackNode<V> {
    fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
        if let Some(n) = self.next.get() {
            f(n);
        }
    }
}

/// A family of persistent stacks sharing one arena. A stack version is an
/// [`OptNodeId`] root; push/pop produce new versions sharing the tail.
pub struct Stack<V: Clone + Send + Sync + 'static> {
    arena: Arena<StackNode<V>>,
}

impl<V: Clone + Send + Sync + 'static> Default for Stack<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Send + Sync + 'static> Stack<V> {
    /// New empty family.
    pub fn new() -> Self {
        Stack {
            arena: Arena::new(),
        }
    }

    /// The underlying arena (statistics).
    pub fn arena(&self) -> &Arena<StackNode<V>> {
        &self.arena
    }

    /// The empty stack.
    pub fn empty(&self) -> OptNodeId {
        OptNodeId::NONE
    }

    /// Number of elements.
    pub fn len(&self, s: OptNodeId) -> usize {
        s.get().map_or(0, |id| self.arena.get(id).len as usize)
    }

    /// Is the stack empty?
    pub fn is_empty(&self, s: OptNodeId) -> bool {
        s.is_none()
    }

    /// Retain a snapshot (add one owner).
    pub fn retain(&self, s: OptNodeId) {
        self.arena.inc_opt(s);
    }

    /// Release one owned reference, collecting garbage precisely.
    pub fn release(&self, s: OptNodeId) -> usize {
        self.arena.collect_opt(s)
    }

    /// Push — O(1), one fresh cell; consumes `s`.
    pub fn push(&self, s: OptNodeId, value: V) -> OptNodeId {
        let len = self.len(s) as u32 + 1;
        OptNodeId::some(self.arena.alloc(StackNode {
            value,
            next: s,
            len,
        }))
    }

    /// Pop — O(1); consumes `s`, returns the rest and the value.
    pub fn pop(&self, s: OptNodeId) -> (OptNodeId, Option<V>) {
        let Some(id) = s.get() else {
            return (OptNodeId::NONE, None);
        };
        if self.arena.rc(id) == 1 {
            let node = self.arena.take(id);
            (node.next, Some(node.value))
        } else {
            let n = self.arena.get(id);
            let (next, value) = (n.next, n.value.clone());
            self.arena.inc_opt(next);
            self.arena.collect(id);
            (next, Some(value))
        }
    }

    /// Peek at the top value.
    pub fn peek(&self, s: OptNodeId) -> Option<&V> {
        s.get().map(|id| &self.arena.get(id).value)
    }

    /// Top-to-bottom traversal.
    pub fn for_each(&self, s: OptNodeId, f: &mut impl FnMut(&V)) {
        let mut cur = s;
        while let Some(id) = cur.get() {
            let n = self.arena.get(id);
            f(&n.value);
            cur = n.next;
        }
    }

    /// Collect into a Vec, top first.
    pub fn to_vec(&self, s: OptNodeId) -> Vec<V> {
        let mut out = Vec::with_capacity(self.len(s));
        self.for_each(s, &mut |v| out.push(v.clone()));
        out
    }

    /// Reverse — O(n) fresh cells; consumes `s`.
    pub fn reverse(&self, s: OptNodeId) -> OptNodeId {
        let mut out = OptNodeId::NONE;
        let mut cur = s;
        loop {
            let (rest, v) = self.pop(cur);
            match v {
                Some(v) => out = self.push(out, v),
                None => return out,
            }
            cur = rest;
        }
    }
}

impl<V: Clone + Send + Sync + 'static> VersionRoots for Stack<V> {
    fn retain_root(&self, root: OptNodeId) {
        self.retain(root);
    }

    fn collect_root(&self, root: OptNodeId) -> usize {
        self.release(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let s: Stack<u64> = Stack::new();
        let mut t = s.empty();
        for i in 0..10 {
            t = s.push(t, i);
        }
        assert_eq!(s.len(t), 10);
        assert_eq!(s.peek(t), Some(&9));
        for i in (0..10).rev() {
            let (rest, v) = s.pop(t);
            assert_eq!(v, Some(i));
            t = rest;
        }
        assert!(s.is_empty(t));
        assert_eq!(s.arena().live(), 0);
    }

    #[test]
    fn versions_share_tails() {
        let s: Stack<u64> = Stack::new();
        let mut base = s.empty();
        for i in 0..100 {
            base = s.push(base, i);
        }
        s.retain(base);
        let v2 = s.push(base, 1000);
        // 101 cells total, not 201: v2 shares base's 100.
        assert_eq!(s.arena().live(), 101);
        assert_eq!(s.to_vec(base).len(), 100);
        assert_eq!(s.to_vec(v2)[0], 1000);
        s.release(base);
        s.release(v2);
        assert_eq!(s.arena().live(), 0);
    }

    #[test]
    fn pop_on_shared_version_preserves_snapshot() {
        let s: Stack<u64> = Stack::new();
        let mut t = s.empty();
        for i in 0..5 {
            t = s.push(t, i);
        }
        s.retain(t);
        let (rest, v) = s.pop(t);
        assert_eq!(v, Some(4));
        assert_eq!(s.to_vec(t), vec![4, 3, 2, 1, 0]); // snapshot intact
        assert_eq!(s.to_vec(rest), vec![3, 2, 1, 0]);
        s.release(t);
        s.release(rest);
        assert_eq!(s.arena().live(), 0);
    }

    #[test]
    fn reverse_and_empty_edge() {
        let s: Stack<u64> = Stack::new();
        assert_eq!(s.pop(s.empty()), (OptNodeId::NONE, None));
        let mut t = s.empty();
        for i in 0..6 {
            t = s.push(t, i);
        }
        let r = s.reverse(t);
        assert_eq!(s.to_vec(r), vec![0, 1, 2, 3, 4, 5]);
        s.release(r);
        assert_eq!(s.arena().live(), 0);
    }
}
