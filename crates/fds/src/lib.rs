//! # mvcc-fds — more purely functional data structures on the PLM arena
//!
//! The paper (§2) notes that "most standard data types can be implemented
//! efficiently (asymptotically) in the functional setting, including
//! balanced trees, queues, stacks and priority queues" — and the whole
//! transactional framework is agnostic to *which* functional structure the
//! versions point at. This crate backs that claim up with three more
//! structures sharing the `mvcc-plm` reference-counted tuple memory and
//! its precise `collect`:
//!
//! * [`Stack`] — a cons list: O(1) push/pop with full version sharing;
//! * [`Queue`] — the classic two-stack functional queue: O(1) enqueue,
//!   amortized O(1) dequeue;
//! * [`Heap`] — a leftist min-heap: O(log n) insert / pop-min / merge,
//!   all by path copying.
//!
//! All follow the same ownership convention as `mvcc-ftree`: operations
//! consume one owned reference per input version and return an owned
//! output version; `retain`/`release` manage snapshots.
//!
//! [`VersionedCell`] is a miniature Figure-1 transaction wrapper that
//! works for *any* of these structures (anything whose versions are
//! arena roots): delay-free readers, single-writer commits, precise GC —
//! demonstrating that `Database` is not tree-specific by construction
//! but only by convenience. Like `mvcc-core`, its process ids are handed
//! out as exclusive [`CellSession`] leases.

//! ## Example
//!
//! ```
//! use mvcc_fds::{Stack, VersionedCell};
//!
//! // A transactional stack: PSWF version maintenance + precise GC.
//! let cell = VersionedCell::new(Stack::<u64>::new(), 2);
//! let mut writer = cell.session().unwrap();
//! writer.write(|stack, base| (stack.push(base, 7), ()));
//! writer.write(|stack, base| (stack.push(base, 9), ()));
//!
//! // Delay-free snapshot read on another leased process id.
//! let mut reader = cell.session().unwrap();
//! let top = reader.read(|stack, root| stack.peek(root).copied());
//! assert_eq!(top, Some(9));
//! assert_eq!(cell.live_versions(), 1); // precise GC in quiescence
//! ```

mod heap;
mod queue;
mod stack;
mod versioned;

pub use heap::{Heap, HeapNode};
pub use queue::{Queue, QueueNode};
pub use stack::{Stack, StackNode};
pub use versioned::{Aborted, CellSession, VersionRoots, VersionedCell};
