//! Functional FIFO queue: the classic two-list ("banker's") design. The
//! queue version is a single root tuple pointing at a front list (next to
//! dequeue) and a reversed back list (recent enqueues); when the front
//! empties, the back is reversed in — O(1) enqueue, amortized O(1)
//! dequeue (each element is reversed exactly once along any version
//! chain).

use mvcc_plm::{Arena, NodeId, OptNodeId, Tuple};

use crate::versioned::VersionRoots;

/// A queue tuple: either a cons cell (shared by both internal lists) or
/// the queue root pairing the two lists.
pub enum QueueNode<V: Clone + Send + Sync + 'static> {
    /// List cell.
    Cell {
        /// Element value.
        value: V,
        /// Rest of the list.
        next: OptNodeId,
    },
    /// Version root: `(front, back, len)`.
    Root {
        /// Dequeue side (in order).
        front: OptNodeId,
        /// Enqueue side (reversed).
        back: OptNodeId,
        /// Total elements.
        len: u32,
    },
}

impl<V: Clone + Send + Sync + 'static> Tuple for QueueNode<V> {
    fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
        match self {
            QueueNode::Cell { next, .. } => {
                if let Some(n) = next.get() {
                    f(n);
                }
            }
            QueueNode::Root { front, back, .. } => {
                if let Some(n) = front.get() {
                    f(n);
                }
                if let Some(n) = back.get() {
                    f(n);
                }
            }
        }
    }
}

/// A family of persistent queues sharing one arena. A queue version is
/// the `OptNodeId` of its root tuple (nil = empty queue).
pub struct Queue<V: Clone + Send + Sync + 'static> {
    arena: Arena<QueueNode<V>>,
}

impl<V: Clone + Send + Sync + 'static> Default for Queue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Send + Sync + 'static> Queue<V> {
    /// New empty family.
    pub fn new() -> Self {
        Queue {
            arena: Arena::new(),
        }
    }

    /// The underlying arena (statistics).
    pub fn arena(&self) -> &Arena<QueueNode<V>> {
        &self.arena
    }

    /// The empty queue.
    pub fn empty(&self) -> OptNodeId {
        OptNodeId::NONE
    }

    /// Retain a snapshot.
    pub fn retain(&self, q: OptNodeId) {
        self.arena.inc_opt(q);
    }

    /// Release one owned reference (precise collect).
    pub fn release(&self, q: OptNodeId) -> usize {
        self.arena.collect_opt(q)
    }

    /// Number of elements.
    pub fn len(&self, q: OptNodeId) -> usize {
        match q.get() {
            None => 0,
            Some(id) => match self.arena.get(id) {
                QueueNode::Root { len, .. } => *len as usize,
                QueueNode::Cell { .. } => unreachable!("version root expected"),
            },
        }
    }

    /// Is the queue empty?
    pub fn is_empty(&self, q: OptNodeId) -> bool {
        self.len(q) == 0
    }

    fn root_parts(&self, q: OptNodeId) -> (OptNodeId, OptNodeId, u32) {
        match q.get() {
            None => (OptNodeId::NONE, OptNodeId::NONE, 0),
            Some(id) => match self.arena.get(id) {
                QueueNode::Root { front, back, len } => (*front, *back, *len),
                QueueNode::Cell { .. } => unreachable!("version root expected"),
            },
        }
    }

    /// Destructure an owned root, transferring ownership of both lists to
    /// the caller.
    fn take_root(&self, q: OptNodeId) -> (OptNodeId, OptNodeId, u32) {
        let Some(id) = q.get() else {
            return (OptNodeId::NONE, OptNodeId::NONE, 0);
        };
        if self.arena.rc(id) == 1 {
            match self.arena.take(id) {
                QueueNode::Root { front, back, len } => (front, back, len),
                QueueNode::Cell { .. } => unreachable!("version root expected"),
            }
        } else {
            let (front, back, len) = self.root_parts(q);
            self.arena.inc_opt(front);
            self.arena.inc_opt(back);
            self.arena.collect(id);
            (front, back, len)
        }
    }

    fn make_root(&self, front: OptNodeId, back: OptNodeId, len: u32) -> OptNodeId {
        if len == 0 {
            debug_assert!(front.is_none() && back.is_none());
            return OptNodeId::NONE;
        }
        OptNodeId::some(self.arena.alloc(QueueNode::Root { front, back, len }))
    }

    fn cons(&self, value: V, next: OptNodeId) -> OptNodeId {
        OptNodeId::some(self.arena.alloc(QueueNode::Cell { value, next }))
    }

    /// Pop one cell off a list, consuming the caller's reference.
    fn uncons(&self, list: OptNodeId) -> (OptNodeId, Option<V>) {
        let Some(id) = list.get() else {
            return (OptNodeId::NONE, None);
        };
        if self.arena.rc(id) == 1 {
            match self.arena.take(id) {
                QueueNode::Cell { value, next } => (next, Some(value)),
                QueueNode::Root { .. } => unreachable!("cell expected"),
            }
        } else {
            let (next, value) = match self.arena.get(id) {
                QueueNode::Cell { value, next } => (*next, value.clone()),
                QueueNode::Root { .. } => unreachable!("cell expected"),
            };
            self.arena.inc_opt(next);
            self.arena.collect(id);
            (next, Some(value))
        }
    }

    /// Enqueue at the tail — O(1); consumes `q`.
    pub fn enqueue(&self, q: OptNodeId, value: V) -> OptNodeId {
        let (front, back, len) = self.take_root(q);
        let back = self.cons(value, back);
        // Keep the invariant "front empty ⇒ queue empty" lazily: the
        // reversal happens on dequeue.
        self.make_root(front, back, len + 1)
    }

    /// Dequeue from the head — amortized O(1); consumes `q`.
    pub fn dequeue(&self, q: OptNodeId) -> (OptNodeId, Option<V>) {
        let (mut front, mut back, len) = self.take_root(q);
        if len == 0 {
            return (OptNodeId::NONE, None);
        }
        if front.is_none() {
            // Reverse the back list into the front (each element pays
            // this exactly once along a linear version history).
            while let (rest, Some(v)) = self.uncons(back) {
                front = self.cons(v, front);
                back = rest;
            }
            back = OptNodeId::NONE;
        }
        let (front_rest, value) = self.uncons(front);
        (self.make_root(front_rest, back, len - 1), value)
    }

    /// Front element without dequeueing (may have to walk the back list
    /// if the front is lazy-empty: O(n) worst case, read-only).
    pub fn peek(&self, q: OptNodeId) -> Option<&V> {
        let (front, back, len) = self.root_parts(q);
        if len == 0 {
            return None;
        }
        if let Some(id) = front.get() {
            match self.arena.get(id) {
                QueueNode::Cell { value, .. } => return Some(value),
                QueueNode::Root { .. } => unreachable!(),
            }
        }
        // Front empty: head is the *last* cell of the back list.
        let mut cur = back;
        let mut last = None;
        while let Some(id) = cur.get() {
            match self.arena.get(id) {
                QueueNode::Cell { value, next } => {
                    last = Some(value);
                    cur = *next;
                }
                QueueNode::Root { .. } => unreachable!(),
            }
        }
        last
    }

    /// Clone out in FIFO order.
    pub fn to_vec(&self, q: OptNodeId) -> Vec<V> {
        let (front, back, len) = self.root_parts(q);
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = front;
        while let Some(id) = cur.get() {
            match self.arena.get(id) {
                QueueNode::Cell { value, next } => {
                    out.push(value.clone());
                    cur = *next;
                }
                QueueNode::Root { .. } => unreachable!(),
            }
        }
        let mut rev = Vec::new();
        let mut cur = back;
        while let Some(id) = cur.get() {
            match self.arena.get(id) {
                QueueNode::Cell { value, next } => {
                    rev.push(value.clone());
                    cur = *next;
                }
                QueueNode::Root { .. } => unreachable!(),
            }
        }
        out.extend(rev.into_iter().rev());
        out
    }
}

impl<V: Clone + Send + Sync + 'static> VersionRoots for Queue<V> {
    fn retain_root(&self, root: OptNodeId) {
        self.retain(root);
    }

    fn collect_root(&self, root: OptNodeId) -> usize {
        self.release(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn fifo_order() {
        let q: Queue<u64> = Queue::new();
        let mut t = q.empty();
        for i in 0..20 {
            t = q.enqueue(t, i);
        }
        assert_eq!(q.len(t), 20);
        for i in 0..20 {
            assert_eq!(q.peek(t), Some(&i));
            let (rest, v) = q.dequeue(t);
            assert_eq!(v, Some(i));
            t = rest;
        }
        assert!(q.is_empty(t));
        assert_eq!(q.arena().live(), 0);
    }

    #[test]
    fn model_check_interleaved() {
        let q: Queue<u64> = Queue::new();
        let mut t = q.empty();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut x = 88172645463325252u64;
        for i in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(3) {
                t = q.enqueue(t, i);
                model.push_back(i);
            } else {
                let (rest, v) = q.dequeue(t);
                assert_eq!(v, model.pop_front());
                t = rest;
            }
            assert_eq!(q.len(t), model.len());
        }
        assert_eq!(q.to_vec(t), model.iter().copied().collect::<Vec<_>>());
        q.release(t);
        assert_eq!(q.arena().live(), 0);
    }

    #[test]
    fn snapshot_isolation() {
        let q: Queue<u64> = Queue::new();
        let mut t = q.empty();
        for i in 0..10 {
            t = q.enqueue(t, i);
        }
        q.retain(t);
        let (t2, v) = q.dequeue(t);
        assert_eq!(v, Some(0));
        let t2 = q.enqueue(t2, 100);
        assert_eq!(q.to_vec(t), (0..10).collect::<Vec<_>>(), "snapshot moved");
        let mut want: Vec<u64> = (1..10).collect();
        want.push(100);
        assert_eq!(q.to_vec(t2), want);
        q.release(t);
        q.release(t2);
        assert_eq!(q.arena().live(), 0);
    }

    #[test]
    fn dequeue_empty() {
        let q: Queue<u64> = Queue::new();
        let (t, v) = q.dequeue(q.empty());
        assert!(t.is_none() && v.is_none());
        assert_eq!(q.peek(q.empty()), None);
    }
}
