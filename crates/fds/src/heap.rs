//! Functional leftist min-heap over the PLM arena.
//!
//! A leftist heap keeps, at every node, the *rank* (distance to the
//! nearest nil descendant along the right spine) of the left child at
//! least that of the right child, so the right spine has length
//! O(log n). `merge` walks only right spines and path-copies the nodes
//! it touches, giving O(log n) insert / pop-min / merge with full
//! structural sharing between versions — the priority-queue instance of
//! the paper's §2 claim that standard data types work in the functional
//! setting.

use mvcc_plm::{Arena, NodeId, OptNodeId, Tuple};

use crate::versioned::VersionRoots;

/// One heap node.
pub struct HeapNode<V: Clone + Ord + Send + Sync + 'static> {
    value: V,
    left: OptNodeId,
    right: OptNodeId,
    /// Leftist rank: 1 + rank of the right child (nil has rank 0).
    rank: u32,
    /// Cached subtree size.
    len: u32,
}

impl<V: Clone + Ord + Send + Sync + 'static> Tuple for HeapNode<V> {
    fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
        if let Some(n) = self.left.get() {
            f(n);
        }
        if let Some(n) = self.right.get() {
            f(n);
        }
    }
}

/// A family of persistent min-heaps sharing one arena. A heap version is
/// an [`OptNodeId`] root (nil = empty heap). Operations consume one owned
/// reference per input version and return an owned output version.
pub struct Heap<V: Clone + Ord + Send + Sync + 'static> {
    arena: Arena<HeapNode<V>>,
}

impl<V: Clone + Ord + Send + Sync + 'static> Default for Heap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Ord + Send + Sync + 'static> Heap<V> {
    /// New empty family.
    pub fn new() -> Self {
        Heap {
            arena: Arena::new(),
        }
    }

    /// The underlying arena (statistics).
    pub fn arena(&self) -> &Arena<HeapNode<V>> {
        &self.arena
    }

    /// The empty heap.
    pub fn empty(&self) -> OptNodeId {
        OptNodeId::NONE
    }

    /// Number of elements.
    pub fn len(&self, h: OptNodeId) -> usize {
        h.get().map_or(0, |id| self.arena.get(id).len as usize)
    }

    /// Is the heap empty?
    pub fn is_empty(&self, h: OptNodeId) -> bool {
        h.is_none()
    }

    /// Retain a snapshot (add one owner).
    pub fn retain(&self, h: OptNodeId) {
        self.arena.inc_opt(h);
    }

    /// Release one owned reference, collecting garbage precisely.
    pub fn release(&self, h: OptNodeId) -> usize {
        self.arena.collect_opt(h)
    }

    fn rank(&self, h: OptNodeId) -> u32 {
        h.get().map_or(0, |id| self.arena.get(id).rank)
    }

    /// Build a node from an owned value and two owned children, swapping
    /// them if needed to restore the leftist invariant.
    fn make(&self, value: V, a: OptNodeId, b: OptNodeId) -> OptNodeId {
        let (ra, rb) = (self.rank(a), self.rank(b));
        let (left, right, rank) = if ra >= rb {
            (a, b, rb + 1)
        } else {
            (b, a, ra + 1)
        };
        let len = 1 + self.len(left) as u32 + self.len(right) as u32;
        OptNodeId::some(self.arena.alloc(HeapNode {
            value,
            left,
            right,
            rank,
            len,
        }))
    }

    /// Destructure an owned root into `(value, left, right)`, transferring
    /// ownership of both children to the caller.
    fn take_node(&self, id: NodeId) -> (V, OptNodeId, OptNodeId) {
        if self.arena.rc(id) == 1 {
            let n = self.arena.take(id);
            (n.value, n.left, n.right)
        } else {
            let n = self.arena.get(id);
            let (value, left, right) = (n.value.clone(), n.left, n.right);
            self.arena.inc_opt(left);
            self.arena.inc_opt(right);
            self.arena.collect(id);
            (value, left, right)
        }
    }

    /// Merge two heaps — O(log n + log m) path-copied nodes; consumes
    /// both arguments.
    pub fn merge(&self, a: OptNodeId, b: OptNodeId) -> OptNodeId {
        let Some(ia) = a.get() else { return b };
        let Some(ib) = b.get() else { return a };
        // Recurse into the heap with the smaller root; ties go left so the
        // merge is deterministic.
        let (small, big) = if self.arena.get(ia).value <= self.arena.get(ib).value {
            (ia, b)
        } else {
            (ib, a)
        };
        let (value, left, right) = self.take_node(small);
        let merged = self.merge(right, big);
        self.make(value, left, merged)
    }

    /// Insert one element — O(log n); consumes `h`.
    pub fn insert(&self, h: OptNodeId, value: V) -> OptNodeId {
        let single = self.make(value, OptNodeId::NONE, OptNodeId::NONE);
        self.merge(h, single)
    }

    /// Remove the minimum — O(log n); consumes `h`, returns the remaining
    /// heap and the removed value.
    pub fn pop_min(&self, h: OptNodeId) -> (OptNodeId, Option<V>) {
        let Some(id) = h.get() else {
            return (OptNodeId::NONE, None);
        };
        let (value, left, right) = self.take_node(id);
        (self.merge(left, right), Some(value))
    }

    /// The minimum element without removing it.
    pub fn peek_min(&self, h: OptNodeId) -> Option<&V> {
        h.get().map(|id| &self.arena.get(id).value)
    }

    /// Clone every element out (heap order not guaranteed).
    pub fn to_vec(&self, h: OptNodeId) -> Vec<V> {
        let mut out = Vec::with_capacity(self.len(h));
        let mut stack = vec![h];
        while let Some(cur) = stack.pop() {
            if let Some(id) = cur.get() {
                let n = self.arena.get(id);
                out.push(n.value.clone());
                stack.push(n.left);
                stack.push(n.right);
            }
        }
        out
    }

    /// Drain in sorted order — consumes `h`.
    pub fn into_sorted_vec(&self, h: OptNodeId) -> Vec<V> {
        let mut out = Vec::with_capacity(self.len(h));
        let mut cur = h;
        loop {
            let (rest, v) = self.pop_min(cur);
            match v {
                Some(v) => out.push(v),
                None => return out,
            }
            cur = rest;
        }
    }

    /// Check the min-heap and leftist-rank invariants (test support).
    pub fn check_invariants(&self, h: OptNodeId) -> Result<(), String> {
        let Some(id) = h.get() else { return Ok(()) };
        let n = self.arena.get(id);
        for child in [n.left, n.right] {
            if let Some(cid) = child.get() {
                let c = self.arena.get(cid);
                if c.value < n.value {
                    return Err(format!("heap order violated at node {:?}", id));
                }
            }
            self.check_invariants(child)?;
        }
        if self.rank(n.left) < self.rank(n.right) {
            return Err(format!("leftist rank violated at node {:?}", id));
        }
        if n.rank != self.rank(n.right) + 1 {
            return Err(format!("cached rank wrong at node {:?}", id));
        }
        if n.len as usize != 1 + self.len(n.left) + self.len(n.right) {
            return Err(format!("cached len wrong at node {:?}", id));
        }
        Ok(())
    }
}

impl<V: Clone + Ord + Send + Sync + 'static> VersionRoots for Heap<V> {
    fn retain_root(&self, root: OptNodeId) {
        self.retain(root);
    }

    fn collect_root(&self, root: OptNodeId) -> usize {
        self.release(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_pop_sorted() {
        let h: Heap<u64> = Heap::new();
        let mut t = h.empty();
        for v in [5u64, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            t = h.insert(t, v);
            h.check_invariants(t).unwrap();
        }
        assert_eq!(h.len(t), 10);
        assert_eq!(h.peek_min(t), Some(&0));
        assert_eq!(h.into_sorted_vec(t), (0..10).collect::<Vec<_>>());
        assert_eq!(h.arena().live(), 0);
    }

    #[test]
    fn merge_two_heaps() {
        let h: Heap<u64> = Heap::new();
        let mut a = h.empty();
        let mut b = h.empty();
        for v in 0..50 {
            if v % 2 == 0 {
                a = h.insert(a, v);
            } else {
                b = h.insert(b, v);
            }
        }
        let m = h.merge(a, b);
        h.check_invariants(m).unwrap();
        assert_eq!(h.into_sorted_vec(m), (0..50).collect::<Vec<_>>());
        assert_eq!(h.arena().live(), 0);
    }

    #[test]
    fn snapshot_isolation() {
        let h: Heap<u64> = Heap::new();
        let mut t = h.empty();
        for v in 0..20 {
            t = h.insert(t, v);
        }
        h.retain(t);
        let (t2, min) = h.pop_min(t);
        assert_eq!(min, Some(0));
        let t2 = h.insert(t2, 100);
        // Snapshot `t` still has all 20 originals.
        let mut snap = h.to_vec(t);
        snap.sort_unstable();
        assert_eq!(snap, (0..20).collect::<Vec<_>>());
        let mut new = h.to_vec(t2);
        new.sort_unstable();
        let mut want: Vec<u64> = (1..20).collect();
        want.push(100);
        assert_eq!(new, want);
        h.release(t);
        h.release(t2);
        assert_eq!(h.arena().live(), 0);
    }

    #[test]
    fn duplicates_and_empty() {
        let h: Heap<u64> = Heap::new();
        assert_eq!(h.pop_min(h.empty()), (OptNodeId::NONE, None));
        let mut t = h.empty();
        for _ in 0..5 {
            t = h.insert(t, 7);
        }
        t = h.insert(t, 7);
        assert_eq!(h.into_sorted_vec(t), vec![7; 6]);
        assert_eq!(h.arena().live(), 0);
    }

    #[test]
    fn random_model_check() {
        let h: Heap<i64> = Heap::new();
        let mut t = h.empty();
        let mut model: std::collections::BinaryHeap<std::cmp::Reverse<i64>> =
            std::collections::BinaryHeap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(5) {
                let v = (x >> 8) as i64 % 1000;
                t = h.insert(t, v);
                model.push(std::cmp::Reverse(v));
            } else {
                let (rest, v) = h.pop_min(t);
                assert_eq!(v, model.pop().map(|r| r.0));
                t = rest;
            }
            assert_eq!(h.len(t), model.len());
        }
        h.check_invariants(t).unwrap();
        h.release(t);
        assert_eq!(h.arena().live(), 0);
    }
}
