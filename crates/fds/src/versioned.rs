//! A miniature Figure-1 transaction wrapper for *any* arena-backed
//! functional structure.
//!
//! [`VersionedCell`] pairs one persistent structure (anything that can
//! retain/collect version roots — see [`VersionRoots`]) with one Version
//! Maintenance object and runs the paper's read/write transaction
//! skeletons over whatever version-root convention the caller uses
//! (`OptNodeId`, nil = initial empty version). It is
//! `mvcc-core::Database` stripped of everything tree-specific —
//! demonstrating that the transactional framework depends only on
//! "versions are reference-counted roots", not on the ordered-map
//! structure the experiments happen to use.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use mvcc_plm::{Arena, OptNodeId, Tuple};
use mvcc_vm::{LeaseError, PidPool, PswfVm, VersionMaintenance, VmKind};

thread_local! {
    /// Reusable release/collect buffer for the deprecated pid-based entry
    /// points (sessions carry their own). Taken (not borrowed) around
    /// each transaction so nested legacy transactions on one thread each
    /// get a buffer instead of a `RefCell` panic.
    static RELEASE_BUF: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_release_buf<R>(f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    let mut buf = RELEASE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
    let result = f(&mut buf);
    RELEASE_BUF.with(|b| {
        let mut slot = b.borrow_mut();
        if slot.capacity() < buf.capacity() {
            buf.clear();
            *slot = buf;
        }
    });
    result
}

/// Error returned by [`VersionedCell::try_write`]: a concurrent writer
/// committed first; the speculative version has been collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("write transaction aborted: a concurrent set succeeded")
    }
}

impl std::error::Error for Aborted {}

/// A structure whose versions are reference-counted arena roots.
///
/// The two operations are exactly what Figure 1's transaction skeleton
/// needs from the shared state: add an owner to a version root when
/// handing it to user code, and drop an owner (collecting precisely,
/// Algorithm 5) when a `release` returns the version.
pub trait VersionRoots: Send + Sync {
    /// Add one owner to `root` (no-op for the nil root).
    fn retain_root(&self, root: OptNodeId);

    /// Drop one owner of `root`, collecting garbage precisely; returns
    /// the number of tuples freed.
    fn collect_root(&self, root: OptNodeId) -> usize;
}

/// The bare arena is itself a [`VersionRoots`]: a version is any tuple
/// reachable from an owned root id.
impl<T: Tuple> VersionRoots for Arena<T> {
    fn retain_root(&self, root: OptNodeId) {
        self.inc_opt(root);
    }

    fn collect_root(&self, root: OptNodeId) -> usize {
        self.collect_opt(root)
    }
}

#[inline]
fn encode(root: OptNodeId) -> u64 {
    root.raw() as u64
}

#[inline]
fn decode(token: u64) -> OptNodeId {
    debug_assert!(token <= u32::MAX as u64, "corrupt version token");
    OptNodeId::from_raw(token as u32)
}

/// A multiversioned cell: one persistent structure `S` plus one VM
/// instance, giving delay-free snapshot reads and atomic commits.
///
/// `M` picks the VM algorithm (default: the paper's PSWF). Each process
/// id may be used by at most one thread at a time, per the VM problem's
/// contract.
pub struct VersionedCell<S: VersionRoots, M: VersionMaintenance = PswfVm> {
    structure: S,
    vmo: M,
    pids: PidPool,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl<S: VersionRoots> VersionedCell<S, PswfVm> {
    /// Wrap `structure` (initial version = nil root) using PSWF for
    /// `processes` processes.
    pub fn new(structure: S, processes: usize) -> Self {
        Self::with_vm(structure, PswfVm::new(processes, encode(OptNodeId::NONE)))
    }
}

impl<S: VersionRoots> VersionedCell<S, Box<dyn VersionMaintenance>> {
    /// Wrap `structure` using the given VM algorithm family.
    pub fn with_kind(structure: S, kind: VmKind, processes: usize) -> Self {
        Self::with_vm(structure, kind.build(processes, encode(OptNodeId::NONE)))
    }
}

impl<S: VersionRoots, M: VersionMaintenance> VersionedCell<S, M> {
    /// Wrap an explicit VM instance whose initial version must carry the
    /// nil-root token.
    pub fn with_vm(structure: S, vmo: M) -> Self {
        assert_eq!(
            vmo.current(),
            encode(OptNodeId::NONE),
            "VM's initial version must be the nil root"
        );
        VersionedCell {
            structure,
            pids: PidPool::new(vmo.processes()),
            vmo,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// Lease a free process id as a [`CellSession`].
    /// `Err(Exhausted)` when every pid is held.
    pub fn session(&self) -> Result<CellSession<'_, S, M>, LeaseError> {
        Ok(CellSession::new(self, self.pids.lease()?))
    }

    /// Lease the specific process id `pid`. `Err(PidLeased)` if held.
    pub fn session_for(&self, pid: usize) -> Result<CellSession<'_, S, M>, LeaseError> {
        self.pids.lease_exact(pid)?;
        Ok(CellSession::new(self, pid))
    }

    /// The wrapped structure (all of its non-transactional API).
    pub fn structure(&self) -> &S {
        &self.structure
    }

    /// The underlying Version Maintenance object (diagnostics).
    pub fn vm(&self) -> &M {
        &self.vmo
    }

    /// Number of process ids.
    pub fn processes(&self) -> usize {
        self.vmo.processes()
    }

    /// Committed write transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Aborted `set` attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Versions not yet collected.
    pub fn live_versions(&self) -> u64 {
        self.vmo.uncollected_versions()
    }

    fn collect_released(&self, released: &mut Vec<u64>) {
        for tok in released.drain(..) {
            self.structure.collect_root(decode(tok));
        }
    }

    /// The read-transaction core (Figure 1, left): acquire, run `f` on
    /// the immutable snapshot root, then release and precisely collect
    /// through the caller's reusable buffer.
    fn read_core<R>(
        &self,
        pid: usize,
        released: &mut Vec<u64>,
        f: impl FnOnce(&S, OptNodeId) -> R,
    ) -> R {
        let root = decode(self.vmo.acquire(pid));
        let result = f(&self.structure, root);
        // ---- response delivered; cleanup phase ----
        self.vmo.release(pid, released);
        self.collect_released(released);
        result
    }

    /// One write attempt (Figure 1, right) through the caller's buffer.
    fn try_write_core<R>(
        &self,
        pid: usize,
        released: &mut Vec<u64>,
        f: &mut impl FnMut(&S, OptNodeId) -> (OptNodeId, R),
    ) -> Option<R> {
        let base = decode(self.vmo.acquire(pid));
        // Hand the user code an owned reference; the version system keeps
        // its own until release.
        self.structure.retain_root(base);
        let (new_root, result) = f(&self.structure, base);
        let ok = self.vmo.set(pid, encode(new_root));
        // ---- response (if ok) delivered; cleanup phase ----
        self.vmo.release(pid, released);
        self.collect_released(released);
        if ok {
            self.commits.fetch_add(1, Ordering::Relaxed);
            Some(result)
        } else {
            // Figure 1 line 7: collect the speculative version.
            self.structure.collect_root(new_root);
            self.aborts.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Run a **read-only transaction** on a raw process id.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `CellSession` and use `CellSession::read`"
    )]
    pub fn read<R>(&self, pid: usize, f: impl FnOnce(&S, OptNodeId) -> R) -> R {
        with_release_buf(|buf| self.read_core(pid, buf, f))
    }

    /// Run a **write transaction** on a raw process id, retrying on
    /// abort.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `CellSession` and use `CellSession::write`"
    )]
    pub fn write<R>(&self, pid: usize, mut f: impl FnMut(&S, OptNodeId) -> (OptNodeId, R)) -> R {
        loop {
            let attempt = with_release_buf(|buf| self.try_write_core(pid, buf, &mut f));
            if let Some(r) = attempt {
                return r;
            }
        }
    }

    /// One write attempt on a raw process id; `Err(Aborted)` means a
    /// concurrent writer committed first and the speculative version has
    /// been collected.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `CellSession` and use `CellSession::try_write`"
    )]
    pub fn try_write<R>(
        &self,
        pid: usize,
        mut f: impl FnMut(&S, OptNodeId) -> (OptNodeId, R),
    ) -> Result<R, Aborted> {
        with_release_buf(|buf| self.try_write_core(pid, buf, &mut f)).ok_or(Aborted)
    }
}

/// An exclusive lease on one process id of a [`VersionedCell`] — the
/// structure-agnostic sibling of `mvcc-core`'s `Session`. `Send` but
/// `!Sync`; transaction methods take `&mut self`, so the VM contract
/// ("one thread, one outstanding transaction per pid") is enforced by
/// the borrow checker. The pid returns to the pool on drop.
pub struct CellSession<'c, S: VersionRoots, M: VersionMaintenance = PswfVm> {
    cell: &'c VersionedCell<S, M>,
    pid: usize,
    /// Reused across transactions: `release` appends, `collect` drains.
    released: Vec<u64>,
    _not_sync: PhantomData<Cell<()>>,
}

impl<'c, S: VersionRoots, M: VersionMaintenance> CellSession<'c, S, M> {
    fn new(cell: &'c VersionedCell<S, M>, pid: usize) -> Self {
        CellSession {
            cell,
            pid,
            released: Vec::new(),
            _not_sync: PhantomData,
        }
    }

    /// The leased process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The cell this session leases from.
    pub fn cell(&self) -> &'c VersionedCell<S, M> {
        self.cell
    }

    /// Run a **read-only transaction** (Figure 1, left).
    pub fn read<R>(&mut self, f: impl FnOnce(&S, OptNodeId) -> R) -> R {
        self.cell.read_core(self.pid, &mut self.released, f)
    }

    /// Run a **write transaction** (Figure 1, right), retrying on abort.
    ///
    /// `f` receives the structure and an *owned* reference to the
    /// snapshot root and must return the new version's owned root (built
    /// by consuming operations / path copying). `f` may run multiple
    /// times; it must have no side effects beyond arena allocation.
    pub fn write<R>(&mut self, mut f: impl FnMut(&S, OptNodeId) -> (OptNodeId, R)) -> R {
        loop {
            match self
                .cell
                .try_write_core(self.pid, &mut self.released, &mut f)
            {
                Some(r) => return r,
                None => continue,
            }
        }
    }

    /// One write attempt; `Err(Aborted)` means a concurrent writer
    /// committed first and the speculative version has been collected.
    pub fn try_write<R>(
        &mut self,
        mut f: impl FnMut(&S, OptNodeId) -> (OptNodeId, R),
    ) -> Result<R, Aborted> {
        self.cell
            .try_write_core(self.pid, &mut self.released, &mut f)
            .ok_or(Aborted)
    }
}

impl<S: VersionRoots, M: VersionMaintenance> Drop for CellSession<'_, S, M> {
    fn drop(&mut self) {
        self.cell.pids.release(self.pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_plm::Leaf;
    use std::sync::Arc;

    /// A versioned counter: each version is one `Leaf<u64>` tuple, the
    /// arena itself acting as the [`VersionRoots`] structure.
    fn bump(session: &mut CellSession<'_, Arena<Leaf<u64>>>) -> u64 {
        session.write(|arena, base| {
            let old = base.get().map_or(0, |id| arena.get(id).0);
            let fresh = OptNodeId::some(arena.alloc(Leaf(old + 1)));
            // Drop the owned base reference: the new version doesn't
            // point at it.
            arena.collect_opt(base);
            (fresh, old + 1)
        })
    }

    #[test]
    fn counter_sequential() {
        let cell = VersionedCell::new(Arena::<Leaf<u64>>::new(), 2);
        let mut w = cell.session().unwrap();
        let mut r = cell.session().unwrap();
        for i in 1..=100 {
            assert_eq!(bump(&mut w), i);
        }
        let v = r.read(|arena, root| arena.get(root.unwrap()).0);
        assert_eq!(v, 100);
        assert_eq!(cell.commits(), 100);
        // Only the current version is live.
        assert_eq!(cell.structure().live(), 1);
    }

    #[test]
    fn read_sees_snapshot_not_later_writes() {
        let cell = Arc::new(VersionedCell::new(Arena::<Leaf<u64>>::new(), 2));
        let mut w = cell.session().unwrap();
        let mut r = cell.session().unwrap();
        bump(&mut w);
        let observed = r.read(|arena, root| {
            let before = arena.get(root.unwrap()).0;
            // A write committed *during* the read must not be visible.
            bump(&mut w);
            let after = arena.get(root.unwrap()).0;
            (before, after)
        });
        assert_eq!(observed, (1, 1));
        assert_eq!(r.read(|a, root| a.get(root.unwrap()).0), 2);
    }

    #[test]
    fn session_pool_enforces_the_pid_contract() {
        let cell = VersionedCell::new(Arena::<Leaf<u64>>::new(), 2);
        let s0 = cell.session_for(0).unwrap();
        assert!(matches!(
            cell.session_for(0),
            Err(LeaseError::PidLeased { pid: 0 })
        ));
        let _s1 = cell.session().unwrap();
        assert!(matches!(cell.session(), Err(LeaseError::Exhausted { .. })));
        drop(s0);
        assert_eq!(cell.session().unwrap().pid(), 0, "dropped pid reusable");
    }

    #[test]
    fn concurrent_counter_all_increments_survive() {
        const THREADS: usize = 4;
        const PER: u64 = 200;
        let cell = Arc::new(VersionedCell::new(Arena::<Leaf<u64>>::new(), THREADS));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut session = cell.session().unwrap();
                    for _ in 0..PER {
                        bump(&mut session);
                    }
                });
            }
        });
        let v = cell
            .session()
            .unwrap()
            .read(|arena, root| arena.get(root.unwrap()).0);
        assert_eq!(v, THREADS as u64 * PER);
        assert_eq!(cell.commits(), THREADS as u64 * PER);
        assert_eq!(
            cell.structure().live(),
            1,
            "precise GC: only current version"
        );
    }

    #[test]
    fn works_with_every_vm_kind() {
        for kind in VmKind::ALL {
            let cell = VersionedCell::with_kind(Arena::<Leaf<u64>>::new(), kind, 3);
            let mut w = cell.session().unwrap();
            let mut r = cell.session().unwrap();
            for _ in 0..10 {
                w.write(|arena, base| {
                    let old = base.get().map_or(0, |id| arena.get(id).0);
                    let fresh = OptNodeId::some(arena.alloc(Leaf(old + 1)));
                    arena.collect_opt(base);
                    (fresh, ())
                });
            }
            let v = r.read(|arena, root| arena.get(root.unwrap()).0);
            assert_eq!(v, 10, "kind {:?}", kind);
        }
    }
}
