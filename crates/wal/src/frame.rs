//! Frame format: length-prefixed, CRC-guarded records of committed
//! batches.
//!
//! ```text
//! frame    := [len: u32 le] [crc32(payload): u32 le] payload
//! payload  := [tx_id: u64 le] [commit_ts: u64 le] [snapshot_ts: u64 le]
//!             [n_ops: u32 le] op*
//! op       := 0x00 [klen: u32 le] key [vlen: u32 le] value   (Put)
//!           | 0x01 [klen: u32 le] key                        (Del)
//! ```
//!
//! The payload head is the sombra MVCC frame shape (standard frame +
//! `[snapshot_ts: 8][commit_ts: 8]` metadata): enough for recovery to
//! re-establish the commit clock and for future consumers (replication,
//! point-in-time restore) to reason about snapshot lineage without
//! decoding the ops.
//!
//! Decoding is defensive end to end: every length is bounds-checked
//! before use, so a torn or bit-flipped frame yields `None` — never a
//! panic or an out-of-bounds slice — and replay degrades to "stop at the
//! last intact record".

/// Upper bound on a frame's payload (sanity check against interpreting
/// garbage as a gigantic length and stalling replay on one bad frame).
pub(crate) const MAX_FRAME_BYTES: u32 = 1 << 30;

/// CRC-32 (IEEE, reflected, as used by zip/png) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One logical key/value delta inside a committed batch. Keys and values
/// are opaque bytes at this layer; the transactional crate encodes its
/// typed keys/values through [`crate::WalCodec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or overwrite a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key (a no-op when absent, so replay is idempotent).
    Del(Vec<u8>),
}

/// One committed batch: the unit of logging, replay and group commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Monotone transaction identifier (diagnostics / dedup).
    pub tx_id: u64,
    /// The commit timestamp this batch established. Strictly increasing
    /// along the log; recovery replays in this order.
    pub commit_ts: u64,
    /// The commit timestamp of the snapshot the batch was computed
    /// against (`commit_ts - 1` under the serialized durable writer).
    pub snapshot_ts: u64,
    /// The batch's deltas, in application order.
    pub ops: Vec<WalOp>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reads over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.bytes(4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let bytes = self.bytes(8)?;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let bytes = self.bytes(1)?;
        Some(bytes[0])
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl WalBatch {
    /// Append the full frame (length prefix, CRC, payload) to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let payload_at = out.len() + 8;
        // Placeholder len + crc, patched below.
        put_u32(out, 0);
        put_u32(out, 0);
        put_u64(out, self.tx_id);
        put_u64(out, self.commit_ts);
        put_u64(out, self.snapshot_ts);
        put_u32(out, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                WalOp::Put(k, v) => {
                    out.push(0x00);
                    put_u32(out, k.len() as u32);
                    out.extend_from_slice(k);
                    put_u32(out, v.len() as u32);
                    out.extend_from_slice(v);
                }
                WalOp::Del(k) => {
                    out.push(0x01);
                    put_u32(out, k.len() as u32);
                    out.extend_from_slice(k);
                }
            }
        }
        let len = (out.len() - payload_at) as u32;
        let crc = crc32(&out[payload_at..]);
        out[payload_at - 8..payload_at - 4].copy_from_slice(&len.to_le_bytes());
        out[payload_at - 4..payload_at].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decode one frame starting at `buf[at..]`. Returns the batch and
    /// the offset just past the frame, or `None` if the bytes do not hold
    /// one intact frame (short length, CRC mismatch, malformed payload) —
    /// the caller treats that as the torn tail.
    pub fn decode_frame(buf: &[u8], at: usize) -> Option<(WalBatch, usize)> {
        let mut head = Reader::new(buf.get(at..)?);
        let len = head.u32()?;
        let crc = head.u32()?;
        if len > MAX_FRAME_BYTES {
            return None;
        }
        let payload = head.bytes(len as usize)?;
        if crc32(payload) != crc {
            return None;
        }
        let mut r = Reader::new(payload);
        let tx_id = r.u64()?;
        let commit_ts = r.u64()?;
        let snapshot_ts = r.u64()?;
        let n_ops = r.u32()?;
        let mut ops = Vec::with_capacity((n_ops as usize).min(payload.len()));
        for _ in 0..n_ops {
            let op = match r.u8()? {
                0x00 => {
                    let klen = r.u32()? as usize;
                    let k = r.bytes(klen)?.to_vec();
                    let vlen = r.u32()? as usize;
                    let v = r.bytes(vlen)?.to_vec();
                    WalOp::Put(k, v)
                }
                0x01 => {
                    let klen = r.u32()? as usize;
                    WalOp::Del(r.bytes(klen)?.to_vec())
                }
                _ => return None,
            };
            ops.push(op);
        }
        if !r.is_empty() {
            return None; // trailing garbage inside a "valid" CRC: reject
        }
        Some((
            WalBatch {
                tx_id,
                commit_ts,
                snapshot_ts,
                ops,
            },
            at + 8 + len as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample() -> WalBatch {
        WalBatch {
            tx_id: 7,
            commit_ts: 42,
            snapshot_ts: 41,
            ops: vec![
                WalOp::Put(b"key-1".to_vec(), b"value-1".to_vec()),
                WalOp::Del(b"key-2".to_vec()),
                WalOp::Put(Vec::new(), Vec::new()),
            ],
        }
    }

    #[test]
    fn frame_roundtrip() {
        let batch = sample();
        let mut buf = vec![0xAA; 3]; // arbitrary prefix: frames are offset-relative
        batch.encode_frame(&mut buf);
        let (decoded, next) = WalBatch::decode_frame(&buf, 3).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn torn_and_corrupt_frames_decode_to_none() {
        let batch = sample();
        let mut buf = Vec::new();
        batch.encode_frame(&mut buf);
        // Every strict prefix is torn.
        for cut in 0..buf.len() {
            assert!(
                WalBatch::decode_frame(&buf[..cut], 0).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Every single-bit flip is caught by the CRC (or the structure).
        for byte in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[byte] ^= 0x10;
            if let Some((decoded, _)) = WalBatch::decode_frame(&flipped, 0) {
                // A flip inside the length prefix can only "succeed" by
                // re-framing onto bytes whose CRC still matches — with a
                // 32-bit CRC over this tiny buffer that cannot happen.
                panic!("bit flip at byte {byte} yielded {decoded:?}");
            }
        }
    }

    #[test]
    fn back_to_back_frames_chain() {
        let mut buf = Vec::new();
        let mut batches = Vec::new();
        for i in 0..5u64 {
            let b = WalBatch {
                tx_id: i,
                commit_ts: i + 1,
                snapshot_ts: i,
                ops: vec![WalOp::Put(vec![i as u8], vec![i as u8; i as usize])],
            };
            b.encode_frame(&mut buf);
            batches.push(b);
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((b, next)) = WalBatch::decode_frame(&buf, at) {
            seen.push(b);
            at = next;
        }
        assert_eq!(seen, batches);
        assert_eq!(at, buf.len());
    }
}
