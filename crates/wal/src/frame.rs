//! Frame format: length-prefixed, CRC-guarded records of committed
//! batches — single-record frames and the multi-record *group* frames
//! that group commit flushes.
//!
//! ```text
//! frame    := [len: u32 le] [crc32(payload): u32 le] payload
//! payload  := record                                         (single)
//!           | [GROUP_TAG: u64 le] [n_records: u32 le] record* (group)
//! record   := [tx_id: u64 le] [commit_ts: u64 le] [snapshot_ts: u64 le]
//!             [n_ops: u32 le] op*
//! op       := 0x00 [klen: u32 le] key [vlen: u32 le] value   (Put)
//!           | 0x01 [klen: u32 le] key                        (Del)
//! ```
//!
//! A group frame begins with [`GROUP_TAG`] (`u64::MAX`) where a single
//! frame carries its `tx_id`; transaction ids start at 1 and are assigned
//! by a monotone counter, so the tag can never collide with a real
//! record. Because the CRC covers the *whole* payload, a torn or
//! bit-flipped group frame rejects as one unit: recovery replays either
//! every record of a coalesced group or none of them (all-or-nothing per
//! group), never a partial group.
//!
//! The record head is the sombra MVCC frame shape (standard frame +
//! `[snapshot_ts: 8][commit_ts: 8]` metadata): enough for recovery to
//! re-establish the commit clock and for future consumers (replication,
//! point-in-time restore) to reason about snapshot lineage without
//! decoding the ops.
//!
//! Decoding is defensive end to end: every length is bounds-checked
//! before use, so a torn or bit-flipped frame yields `None` — never a
//! panic or an out-of-bounds slice — and replay degrades to "stop at the
//! last intact record".

/// Upper bound on a frame's payload (sanity check against interpreting
/// garbage as a gigantic length and stalling replay on one bad frame).
pub(crate) const MAX_FRAME_BYTES: u32 = 1 << 30;

/// First 8 bytes of a group frame's payload. `u64::MAX` is unreachable
/// as a `tx_id` (ids count up from 1), so a decoder can tell the two
/// payload shapes apart from the first word.
pub const GROUP_TAG: u64 = u64::MAX;

/// Records per group frame before the flush splits into another frame
/// (all frames of one flush still share a single fsync). Bounds frame
/// size so one gigantic group cannot approach [`MAX_FRAME_BYTES`].
pub(crate) const GROUP_CHUNK_RECORDS: usize = 1024;

/// CRC-32 (IEEE, reflected, as used by zip/png) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One logical key/value delta inside a committed batch. Keys and values
/// are opaque bytes at this layer; the transactional crate encodes its
/// typed keys/values through [`crate::WalCodec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or overwrite a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key (a no-op when absent, so replay is idempotent).
    Del(Vec<u8>),
}

/// One committed batch: the unit of logging, replay and group commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Monotone transaction identifier (diagnostics / dedup).
    pub tx_id: u64,
    /// The commit timestamp this batch established. Strictly increasing
    /// along the log; recovery replays in this order.
    pub commit_ts: u64,
    /// The commit timestamp of the snapshot the batch was computed
    /// against (`commit_ts - 1` under the serialized durable writer).
    pub snapshot_ts: u64,
    /// The batch's deltas, in application order.
    pub ops: Vec<WalOp>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reads over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.bytes(4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let bytes = self.bytes(8)?;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let bytes = self.bytes(1)?;
        Some(bytes[0])
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Reserve a frame head (placeholder len + CRC) in `out`; returns the
/// payload's start offset, for [`seal_frame`].
pub(crate) fn begin_frame(out: &mut Vec<u8>) -> usize {
    put_u32(out, 0);
    put_u32(out, 0);
    out.len()
}

/// Patch the length prefix and CRC of the frame whose payload began at
/// `payload_at` (everything appended since [`begin_frame`]).
pub(crate) fn seal_frame(out: &mut [u8], payload_at: usize) {
    let len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[payload_at - 8..payload_at - 4].copy_from_slice(&len.to_le_bytes());
    out[payload_at - 4..payload_at].copy_from_slice(&crc.to_le_bytes());
}

/// Frame pre-encoded record bodies as one *group* frame:
/// `[GROUP_TAG][n_records] bodies`. `bodies` must hold exactly
/// `n_records` back-to-back [`WalBatch::encode_record`] encodings.
pub(crate) fn encode_group_frame_raw(bodies: &[u8], n_records: u32, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    put_u64(out, GROUP_TAG);
    put_u32(out, n_records);
    out.extend_from_slice(bodies);
    seal_frame(out, at);
}

/// Frame one pre-encoded record body as an ordinary single-record frame.
pub(crate) fn encode_single_frame_raw(body: &[u8], out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.extend_from_slice(body);
    seal_frame(out, at);
}

impl WalBatch {
    /// Append this batch's *record body* (no frame head) to `out` — the
    /// unit both single and group frames are assembled from.
    pub fn encode_record(&self, out: &mut Vec<u8>) {
        put_u64(out, self.tx_id);
        put_u64(out, self.commit_ts);
        put_u64(out, self.snapshot_ts);
        put_u32(out, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                WalOp::Put(k, v) => {
                    out.push(0x00);
                    put_u32(out, k.len() as u32);
                    out.extend_from_slice(k);
                    put_u32(out, v.len() as u32);
                    out.extend_from_slice(v);
                }
                WalOp::Del(k) => {
                    out.push(0x01);
                    put_u32(out, k.len() as u32);
                    out.extend_from_slice(k);
                }
            }
        }
    }

    /// Append the full single-record frame (length prefix, CRC, payload)
    /// to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let at = begin_frame(out);
        self.encode_record(out);
        seal_frame(out, at);
    }

    /// Decode one record body from `r`.
    fn decode_record(r: &mut Reader<'_>, payload_len: usize) -> Option<WalBatch> {
        let tx_id = r.u64()?;
        let commit_ts = r.u64()?;
        let snapshot_ts = r.u64()?;
        let n_ops = r.u32()?;
        let mut ops = Vec::with_capacity((n_ops as usize).min(payload_len));
        for _ in 0..n_ops {
            let op = match r.u8()? {
                0x00 => {
                    let klen = r.u32()? as usize;
                    let k = r.bytes(klen)?.to_vec();
                    let vlen = r.u32()? as usize;
                    let v = r.bytes(vlen)?.to_vec();
                    WalOp::Put(k, v)
                }
                0x01 => {
                    let klen = r.u32()? as usize;
                    WalOp::Del(r.bytes(klen)?.to_vec())
                }
                _ => return None,
            };
            ops.push(op);
        }
        Some(WalBatch {
            tx_id,
            commit_ts,
            snapshot_ts,
            ops,
        })
    }

    /// Decode one frame starting at `buf[at..]` — single-record *or*
    /// group — appending its batches to `out` in record order. Returns
    /// the offset just past the frame, or `None` if the bytes do not hold
    /// one intact frame (short length, CRC mismatch, malformed payload) —
    /// the caller treats that as the torn tail. On `None`, `out` is left
    /// exactly as it was: a torn group contributes *none* of its records.
    pub fn decode_frames(buf: &[u8], at: usize, out: &mut Vec<WalBatch>) -> Option<usize> {
        let mut head = Reader::new(buf.get(at..)?);
        let len = head.u32()?;
        let crc = head.u32()?;
        if len > MAX_FRAME_BYTES {
            return None;
        }
        let payload = head.bytes(len as usize)?;
        if crc32(payload) != crc {
            return None;
        }
        let mut r = Reader::new(payload);
        let mark = out.len();
        let intact = (|| -> Option<()> {
            if payload.len() >= 8 && payload[..8] == GROUP_TAG.to_le_bytes() {
                r.u64()?; // the tag
                let n_records = r.u32()?;
                for _ in 0..n_records {
                    out.push(Self::decode_record(&mut r, payload.len())?);
                }
            } else {
                out.push(Self::decode_record(&mut r, payload.len())?);
            }
            if r.is_empty() {
                Some(())
            } else {
                None // trailing garbage inside a "valid" CRC: reject
            }
        })();
        if intact.is_none() {
            out.truncate(mark);
            return None;
        }
        Some(at + 8 + len as usize)
    }

    /// Decode one *single-record* frame starting at `buf[at..]`. Returns
    /// the batch and the offset just past the frame, or `None` for torn /
    /// corrupt bytes — or for a (valid) group frame, which holds more
    /// than one record; use [`WalBatch::decode_frames`] to accept both
    /// shapes.
    pub fn decode_frame(buf: &[u8], at: usize) -> Option<(WalBatch, usize)> {
        let mut one = Vec::with_capacity(1);
        let next = Self::decode_frames(buf, at, &mut one)?;
        if one.len() != 1 {
            return None;
        }
        Some((one.pop().expect("checked len"), next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample() -> WalBatch {
        WalBatch {
            tx_id: 7,
            commit_ts: 42,
            snapshot_ts: 41,
            ops: vec![
                WalOp::Put(b"key-1".to_vec(), b"value-1".to_vec()),
                WalOp::Del(b"key-2".to_vec()),
                WalOp::Put(Vec::new(), Vec::new()),
            ],
        }
    }

    #[test]
    fn frame_roundtrip() {
        let batch = sample();
        let mut buf = vec![0xAA; 3]; // arbitrary prefix: frames are offset-relative
        batch.encode_frame(&mut buf);
        let (decoded, next) = WalBatch::decode_frame(&buf, 3).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn torn_and_corrupt_frames_decode_to_none() {
        let batch = sample();
        let mut buf = Vec::new();
        batch.encode_frame(&mut buf);
        // Every strict prefix is torn.
        for cut in 0..buf.len() {
            assert!(
                WalBatch::decode_frame(&buf[..cut], 0).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Every single-bit flip is caught by the CRC (or the structure).
        for byte in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[byte] ^= 0x10;
            if let Some((decoded, _)) = WalBatch::decode_frame(&flipped, 0) {
                // A flip inside the length prefix can only "succeed" by
                // re-framing onto bytes whose CRC still matches — with a
                // 32-bit CRC over this tiny buffer that cannot happen.
                panic!("bit flip at byte {byte} yielded {decoded:?}");
            }
        }
    }

    #[test]
    fn group_frame_roundtrip() {
        let batches: Vec<WalBatch> = (1..=5u64)
            .map(|i| WalBatch {
                tx_id: i,
                commit_ts: i + 10,
                snapshot_ts: i + 9,
                ops: vec![WalOp::Put(vec![i as u8], vec![i as u8; i as usize])],
            })
            .collect();
        let mut bodies = Vec::new();
        for b in &batches {
            b.encode_record(&mut bodies);
        }
        let mut buf = vec![0x55; 2];
        encode_group_frame_raw(&bodies, batches.len() as u32, &mut buf);
        let mut out = Vec::new();
        let next = WalBatch::decode_frames(&buf, 2, &mut out).unwrap();
        assert_eq!(out, batches);
        assert_eq!(next, buf.len());
        // The single-record decoder refuses the multi-record shape.
        assert!(WalBatch::decode_frame(&buf, 2).is_none());
    }

    #[test]
    fn torn_group_frame_is_all_or_nothing() {
        let batches: Vec<WalBatch> = (1..=4u64)
            .map(|i| WalBatch {
                tx_id: i,
                commit_ts: i,
                snapshot_ts: i - 1,
                ops: vec![WalOp::Put(vec![i as u8; 8], vec![0xCD; 32])],
            })
            .collect();
        let mut bodies = Vec::new();
        for b in &batches {
            b.encode_record(&mut bodies);
        }
        let mut buf = Vec::new();
        encode_group_frame_raw(&bodies, batches.len() as u32, &mut buf);
        // Every strict prefix — including cuts that leave several whole
        // record bodies intact — must yield no records at all.
        for cut in 0..buf.len() {
            let mut out = vec![sample()]; // pre-existing content survives
            assert!(
                WalBatch::decode_frames(&buf[..cut], 0, &mut out).is_none(),
                "prefix of {cut} bytes decoded"
            );
            assert_eq!(out.len(), 1, "torn group leaked records at cut {cut}");
        }
        // Any single-bit flip rejects the whole group.
        for byte in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[byte] ^= 0x04;
            let mut out = Vec::new();
            assert!(
                WalBatch::decode_frames(&flipped, 0, &mut out).is_none(),
                "bit flip at byte {byte} decoded"
            );
            assert!(out.is_empty());
        }
    }

    #[test]
    fn single_record_frames_decode_through_both_apis() {
        let batch = sample();
        let mut buf = Vec::new();
        batch.encode_frame(&mut buf);
        let mut out = Vec::new();
        let next = WalBatch::decode_frames(&buf, 0, &mut out).unwrap();
        assert_eq!(out, vec![batch.clone()]);
        assert_eq!(next, buf.len());
        assert_eq!(WalBatch::decode_frame(&buf, 0).unwrap().0, batch);
    }

    #[test]
    fn back_to_back_frames_chain() {
        let mut buf = Vec::new();
        let mut batches = Vec::new();
        for i in 0..5u64 {
            let b = WalBatch {
                tx_id: i,
                commit_ts: i + 1,
                snapshot_ts: i,
                ops: vec![WalOp::Put(vec![i as u8], vec![i as u8; i as usize])],
            };
            b.encode_frame(&mut buf);
            batches.push(b);
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((b, next)) = WalBatch::decode_frame(&buf, at) {
            seen.push(b);
            at = next;
        }
        assert_eq!(seen, batches);
        assert_eq!(at, buf.len());
    }
}
