//! Byte codecs bridging the transactional crate's typed keys/values and
//! the WAL's opaque byte strings.
//!
//! The log stores `Vec<u8>` keys and values ([`crate::WalOp`]); the
//! transactional layer's trees are generic over key/value types. A
//! [`WalCodec`] bound on those types is the only coupling: `encode` must
//! be injective (two distinct values never share an encoding) and
//! `decode` must invert it, but encodings need *not* be order-preserving
//! — replay decodes back to typed values before touching a tree, it never
//! compares raw bytes.

/// Fixed, self-inverting byte encoding for a key or value type.
pub trait WalCodec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode a value from exactly `bytes` (the full slice must be
    /// consumed). `None` on malformed input — recovery surfaces that as
    /// corruption rather than guessing.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WalCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u16, u32, u64, u128, i16, i32, i64, i128);

impl WalCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl WalCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl WalCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl WalCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        std::str::from_utf8(bytes).ok().map(str::to_string)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WalCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), Some(v));
    }

    #[test]
    fn integers_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX - 1);
        roundtrip(-5i64);
        roundtrip(i128::MIN);
        roundtrip(7u16);
    }

    #[test]
    fn composite_types_roundtrip() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(b"raw bytes \xFF\x00".to_vec());
        roundtrip("unicode \u{1F980}".to_string());
    }

    #[test]
    fn malformed_inputs_decode_to_none() {
        assert_eq!(u64::decode(&[1, 2, 3]), None);
        assert_eq!(<()>::decode(&[0]), None);
        assert_eq!(bool::decode(&[2]), None);
        assert_eq!(String::decode(&[0xFF, 0xFE]), None);
    }
}
