//! The storage abstraction every durability layer writes through.
//!
//! One flat namespace of append-only-ish files is all the WAL and
//! checkpoints need: segments only ever append (plus a truncate to repair
//! a torn tail), checkpoints write a temporary name and rename it into
//! place. Keeping the surface this small is what makes the in-memory
//! fault-injection double ([`crate::FaultStorage`]) a faithful model of
//! the real filesystem backend.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// A flat namespace of files supporting the operations the WAL and
/// checkpoint layers need. Implementations must be safe to call from
/// multiple threads (the log serializes appends itself; reads and
/// maintenance may come from other threads).
///
/// `append` is *not* assumed atomic: a crash (or a failed call) may leave
/// a prefix of the data — exactly the torn-write behavior recovery must
/// tolerate. `rename` over an existing name replaces it (the checkpoint
/// publication step).
pub trait Storage: Send + Sync + 'static {
    /// Append `data` to `name`, creating the file if absent.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Flush `name`'s data to durable storage.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Read the entire contents of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Current length of `name` in bytes.
    fn len(&self, name: &str) -> io::Result<u64>;
    /// Truncate `name` to `len` bytes (torn-tail repair).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Delete `name`.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// All file names in the namespace, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// The real-filesystem [`Storage`]: one directory, one file per name.
///
/// Append handles are cached so the hot append/sync path does not re-open
/// the segment per commit; maintenance operations (truncate, remove,
/// rename) drop the cached handle first.
pub struct DirStorage {
    dir: PathBuf,
    handles: Mutex<HashMap<String, File>>,
}

impl DirStorage {
    /// Open (creating if needed) `dir` as a storage namespace.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStorage {
            dir,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The directory backing this storage.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Fsync the directory itself so file creations, renames and removals
    /// (directory-entry metadata, not file data) survive a crash. Without
    /// this a published checkpoint rename or a fresh WAL segment can
    /// vanish on power loss even though every *file* was fsynced.
    fn sync_dir(&self) -> io::Result<()> {
        #[cfg(unix)]
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    fn with_handle<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut File) -> io::Result<R>,
    ) -> io::Result<R> {
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        if !handles.contains_key(name) {
            let path = self.path(name);
            let created = !path.exists();
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            if created {
                // The new file's directory entry must be durable before
                // any acked bytes inside it.
                self.sync_dir()?;
            }
            handles.insert(name.to_string(), file);
        }
        f(handles.get_mut(name).expect("inserted above"))
    }

    fn drop_handle(&self, name: &str) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }
}

impl Storage for DirStorage {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.with_handle(name, |f| f.write_all(data))
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.with_handle(name, |f| f.sync_data())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.drop_handle(name);
        let f = OpenOptions::new().write(true).open(self.path(name))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.drop_handle(name);
        std::fs::remove_file(self.path(name))?;
        self.sync_dir()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(self.path(from), self.path(to))?;
        // The rename is the publication point (checkpoints): make the
        // directory entry durable before reporting success.
        self.sync_dir()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mvcc-wal-storage-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dir_storage_roundtrip() {
        let dir = tmp();
        let s = DirStorage::new(&dir).unwrap();
        s.append("a.seg", b"hello ").unwrap();
        s.append("a.seg", b"world").unwrap();
        s.sync("a.seg").unwrap();
        assert_eq!(s.read("a.seg").unwrap(), b"hello world");
        assert_eq!(s.len("a.seg").unwrap(), 11);
        s.truncate("a.seg", 5).unwrap();
        assert_eq!(s.read("a.seg").unwrap(), b"hello");
        // Appends after a truncate land at the new end.
        s.append("a.seg", b"!").unwrap();
        assert_eq!(s.read("a.seg").unwrap(), b"hello!");
        s.rename("a.seg", "b.seg").unwrap();
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["b.seg"]);
        s.remove("b.seg").unwrap();
        assert!(s.list().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
