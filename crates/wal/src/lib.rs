//! # mvcc-wal — durability for the multiversion database
//!
//! The in-memory database (mvcc-core) commits a batch by installing a new
//! version root; a process crash loses every one of those commits. This
//! crate adds the three classic durability layers, kept deliberately
//! independent of the tree types so the transactional crate wires them in
//! without this crate knowing about forests or sessions:
//!
//! * **Write-ahead log** ([`Wal`]) — append-only segment files
//!   (`wal-{seq:08}.seg`, rolled at a size threshold) of CRC-guarded,
//!   length-prefixed frames. Two append paths share the segments:
//!   [`Wal::append`] writes one record per frame and fsyncs per the
//!   [`FsyncPolicy`] (the *serial* path), while [`Wal::enqueue`] +
//!   [`Wal::wait_durable`] stage records on a commit-ordered **group
//!   tail** that a leader — the first durability waiter, or a dedicated
//!   flusher thread — drains into one multi-record frame and a single
//!   fsync (the *group-commit* path; see [`GroupStats`] for how well it
//!   coalesces). Appends retry transient I/O errors with exponential
//!   backoff before surfacing a typed [`WalError`].
//! * **Snapshot checkpoints** ([`checkpoint`]) — a full key/value image
//!   at one `commit_ts`, written to a temporary name, CRC-sealed, then
//!   renamed into place so a crash mid-checkpoint leaves the previous
//!   checkpoint authoritative. Loading falls back across corrupt
//!   checkpoints to the newest valid one.
//! * **Recovery** ([`Wal::open`]) — scans the segments, replays every
//!   intact frame in order and *gracefully degrades* on a torn tail: a
//!   frame with a short length or bad CRC ends replay at the last intact
//!   record (the torn bytes are truncated away so the log is appendable
//!   again) instead of aborting.
//!
//! ## Frame grammar
//!
//! Every frame is length-prefixed and CRC-guarded; the checksum covers
//! the whole payload, so a torn or bit-flipped **group** frame rejects
//! every record in it — coalesced commits recover all-or-nothing, never
//! as a partial group:
//!
//! ```text
//! segment := "MVWALSEG" [segment_seq: u64] frame*
//! frame   := [payload_len: u32] [crc32(payload): u32] payload
//! payload := record                                      // single commit
//!          | [GROUP_TAG: u64] [n_records: u32] record*   // coalesced group
//! record  := [tx_id: u64] [commit_ts: u64] [snapshot_ts: u64]
//!            [n_ops: u32] op*
//! op      := [0x00] [key_len: u32] key [val_len: u32] val   // put
//!          | [0x01] [key_len: u32] key                      // delete
//! ```
//!
//! [`GROUP_TAG`] is `u64::MAX`; real `tx_id`s start at 1, so the first
//! eight bytes of a payload decide its shape unambiguously. All integers
//! are little-endian.
//!
//! All I/O goes through the [`Storage`] trait: [`DirStorage`] is the real
//! filesystem backend, and [`FaultStorage`] is an in-memory double with a
//! seeded fault plan — torn writes, dropped unsynced bytes, bit flips,
//! transient append failures, short reads and crash-points at every write
//! site — driving the crash-recovery property tests in the workspace root
//! (`tests/wal_recovery.rs`).
//!
//! ```
//! use std::sync::Arc;
//! use mvcc_wal::{FaultStorage, FsyncPolicy, Wal, WalBatch, WalConfig, WalOp};
//!
//! let storage = Arc::new(FaultStorage::unfaulted());
//! let (wal, replay) = Wal::open(storage.clone(), WalConfig::default()).unwrap();
//! assert!(replay.batches.is_empty());
//! wal.append(&WalBatch {
//!     tx_id: 1,
//!     commit_ts: 1,
//!     snapshot_ts: 0,
//!     ops: vec![WalOp::Put(b"k".to_vec(), b"v".to_vec())],
//! })
//! .unwrap();
//! // Re-opening replays the committed batch.
//! drop(wal);
//! let (_wal, replay) = Wal::open(storage, WalConfig::default()).unwrap();
//! assert_eq!(replay.batches.len(), 1);
//! assert!(replay.torn.is_none());
//! ```

pub mod checkpoint;
pub mod codec;
mod fault;
mod frame;
mod log;
mod storage;

pub use codec::WalCodec;
pub use fault::{FaultPlan, FaultStorage};
pub use frame::{crc32, WalBatch, WalOp, GROUP_TAG};
pub use log::{is_segment_name, GroupStats, Replay, TornTail, Wal};
pub use storage::{DirStorage, Storage};

use std::time::Duration;

/// When the log calls `fsync` on the active segment.
///
/// The policy trades a crash's worst-case loss window against commit
/// latency: `Always` makes every acknowledged commit durable; `EveryN(n)`
/// group-commits (a crash can lose up to the last `n - 1` acknowledged
/// batches, but they are lost *from the tail* — recovery still yields a
/// committed prefix); `Off` leaves flushing to the OS entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acknowledged commit is durable.
    Always,
    /// Sync after every `n`-th append (group commit). `EveryN(1)` is
    /// `Always`.
    EveryN(u64),
    /// Never sync; the OS flushes at its leisure.
    Off,
}

/// Bounded retry for transient I/O errors on the append path.
///
/// An append that still fails after `attempts` retries surfaces as
/// [`WalError::Io`]; any partial bytes a failed attempt may have written
/// are truncated away before each retry, so a retried append can never
/// leave a corrupt frame *in front of* later records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub initial_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
        }
    }
}

/// Configuration for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Group-commit fsync policy for the append path.
    pub fsync: FsyncPolicy,
    /// Roll to a fresh segment file once the active one exceeds this many
    /// bytes (checkpoint truncation drops whole sealed segments).
    pub segment_bytes: u64,
    /// Transient-error retry policy for appends.
    pub retry: RetryPolicy,
    /// High watermark on the group-commit tail, in pending records
    /// (0 = unbounded). [`Wal::enqueue`] past it blocks — leading a
    /// flush itself if none is in progress — and [`Wal::try_enqueue`]
    /// returns [`WalError::Backpressure`], so the tail can never outrun
    /// the disk without bound.
    pub max_pending_batches: usize,
    /// High watermark on the group-commit tail, in encoded record bytes
    /// (0 = unbounded). Same backpressure contract as
    /// [`WalConfig::max_pending_batches`]; whichever trips first wins.
    pub max_pending_bytes: usize,
    /// Flusher-latency SLO: a group flush slower than this counts as an
    /// [`GroupStats::slo_misses`] saturation event (`None` = no SLO).
    pub flush_slo: Option<Duration>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            retry: RetryPolicy::default(),
            max_pending_batches: 0,
            max_pending_bytes: 0,
            flush_slo: None,
        }
    }
}

/// Typed durability errors. Everything the WAL, checkpoint and recovery
/// paths can surface; `From<std::io::Error>` is deliberately absent — the
/// call sites wrap I/O failures with the operation and file they hit.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation failed and (for appends) kept failing across the
    /// configured retries.
    Io {
        /// The storage operation that failed (`"append"`, `"sync"`, …).
        op: &'static str,
        /// The file the operation targeted.
        name: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A record failed validation where corruption is not tolerable (a
    /// checkpoint body, or a frame that decodes but contradicts itself).
    /// Torn WAL *tails* do not produce this error — they end replay
    /// gracefully (see [`Replay::torn`]).
    Corrupt {
        /// The file holding the corrupt bytes.
        name: String,
        /// Byte offset of the corruption.
        offset: u64,
        /// What failed to validate.
        reason: &'static str,
    },
    /// A post-append failure (fsync or segment roll) could not be rolled
    /// back, so the log's tail holds a frame that was never acknowledged
    /// and cannot be removed. The log refuses all further appends —
    /// writing past that frame could resurrect the unacknowledged commit
    /// after a crash. Re-open the log ([`Wal::open`]) to repair and
    /// resume.
    Poisoned,
    /// The group-commit tail is at its configured watermark
    /// ([`WalConfig::max_pending_batches`] /
    /// [`WalConfig::max_pending_bytes`]) and the caller asked not to
    /// block ([`Wal::try_enqueue`]). Nothing was enqueued; retry after a
    /// flush drains the tail.
    Backpressure,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, name, source } => {
                write!(f, "wal {op} on {name:?} failed: {source}")
            }
            WalError::Corrupt {
                name,
                offset,
                reason,
            } => {
                write!(f, "corrupt record in {name:?} at byte {offset}: {reason}")
            }
            WalError::Poisoned => {
                write!(
                    f,
                    "write-ahead log poisoned by an unrecoverable append failure; \
                     re-open to repair"
                )
            }
            WalError::Backpressure => {
                write!(
                    f,
                    "group-commit tail is at its watermark; retry after a flush drains it"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Corrupt { .. } | WalError::Poisoned | WalError::Backpressure => None,
        }
    }
}

pub(crate) fn io_err(op: &'static str, name: &str, source: std::io::Error) -> WalError {
    WalError::Io {
        op,
        name: name.to_string(),
        source,
    }
}
