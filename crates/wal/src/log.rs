//! The write-ahead log proper: append-only segment files, group-commit
//! coalescing, bounded retry, and graceful torn-tail recovery.
//!
//! A log is a sequence of segment files `wal-<seq>.seg`, each beginning
//! with a 16-byte header (magic + sequence number) followed by frames
//! (see [`crate::frame`]). Appends go to the newest segment; once it
//! exceeds [`WalConfig::segment_bytes`] the log seals it and starts the
//! next. Checkpoint truncation ([`Wal::truncate_before`]) drops whole
//! sealed segments whose every batch is covered by a checkpoint — the
//! active segment is never dropped.
//!
//! Two append paths share the segment files:
//!
//! * [`Wal::append`] — the serial path: one frame, fsynced per policy,
//!   durable (or rolled back) by the time the call returns.
//! * [`Wal::enqueue`] + [`Wal::wait_durable`] — the group-commit path:
//!   `enqueue` encodes the batch onto an in-memory pending tail (the
//!   commit-ordered record queue) and returns a sequence number;
//!   `wait_durable` blocks until a *flush* — one storage append of the
//!   whole pending group as multi-record frames, one fsync — covers that
//!   sequence. The first waiter to find no flush in progress elects
//!   itself leader and performs the flush while later enqueuers keep
//!   adding to the next group; everyone else waits on a condvar and is
//!   woken with the result. [`Wal::flush_pending`] drives the same flush
//!   explicitly (the dedicated-flusher policy and `sync`).
//!
//! The two paths have different failure contracts. A serial append rolls
//! its frame back on any post-append failure, so `Err` means "the log is
//! unchanged". A group flush cannot roll back: its records were enqueued
//! (and the corresponding commits made visible) before the flush ran, so
//! truncating them away would let the *next* group replay over a gap in
//! commit order. A failed flush therefore poisons the log —
//! [`WalError::Poisoned`] to every waiter and every further enqueue —
//! and recovery at the next open repairs whatever prefix actually
//! reached storage.
//!
//! [`Wal::open`] is recovery: it scans the segments in sequence order,
//! replays every intact frame (group frames yield their records in
//! order, all-or-nothing), and stops at the first torn or corrupt frame.
//! The torn bytes are truncated away and any segments *after* the torn
//! point are dropped, so the surviving log is exactly the replayed
//! prefix and immediately appendable — a crash mid-append (or a bit flip
//! anywhere) costs the tail, never the log.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::frame::{self, WalBatch, GROUP_CHUNK_RECORDS};
use crate::{io_err, FsyncPolicy, RetryPolicy, Storage, WalConfig, WalError};

const SEGMENT_MAGIC: &[u8; 8] = b"MVWALSEG";
const SEGMENT_HEADER_BYTES: u64 = 16;

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Is `name` a WAL segment file (`wal-<seq>.seg`)? Lets callers that see
/// only a [`Storage`] listing — e.g. footprint accounting for a store
/// opened without a live [`Wal`] — recognize segment files without
/// duplicating the naming scheme.
pub fn is_segment_name(name: &str) -> bool {
    parse_segment_name(name).is_some()
}

#[derive(Debug, Clone)]
struct SegmentMeta {
    seq: u64,
    bytes: u64,
    batches: u64,
    /// `commit_ts` of the last batch in the segment (0 when empty).
    last_ts: u64,
}

impl SegmentMeta {
    fn name(&self) -> String {
        segment_name(self.seq)
    }
}

/// Where and why replay stopped early. The bytes at (and after) this
/// point were discarded by the open-time repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment holding the first bad frame.
    pub segment: String,
    /// Byte offset of the first bad frame within that segment.
    pub offset: u64,
    /// What failed (`"torn or corrupt frame"`, `"bad segment header"`).
    pub reason: &'static str,
}

/// The result of scanning the log at [`Wal::open`] time.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every intact batch, in append (= `commit_ts`) order.
    pub batches: Vec<WalBatch>,
    /// `Some` when replay ended at a torn/corrupt frame instead of the
    /// log's true end; the damage has been truncated away.
    pub torn: Option<TornTail>,
    /// Segment files scanned.
    pub segments: usize,
    /// Segment files discarded because they sat beyond the torn point
    /// (or had an unreadable header).
    pub dropped_segments: usize,
    /// Bytes truncated off the torn segment.
    pub repaired_bytes: u64,
}

struct WalInner {
    /// Sealed segments, oldest first. Invariant: strictly increasing
    /// `seq`, all older than `cur`.
    sealed: Vec<SegmentMeta>,
    /// The active segment; appends land here.
    cur: SegmentMeta,
    appends_since_sync: u64,
    /// Reusable frame-encoding buffer.
    scratch: Vec<u8>,
    /// Set when a post-append failure could not be rolled back: the tail
    /// holds an unacknowledged frame we cannot remove, so every further
    /// append (which would write *past* it and make it replayable as a
    /// committed prefix) is refused with [`WalError::Poisoned`].
    poisoned: bool,
}

/// Cumulative group-commit counters, snapshotted by [`Wal::group_stats`]
/// (zero everywhere when only the serial [`Wal::append`] path is used).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Flushes that reached storage (each one storage append + fsync).
    pub groups: u64,
    /// Batches across all flushed groups.
    pub batches: u64,
    /// The largest single group flushed.
    pub max_group: u64,
    /// Total wall-clock nanoseconds spent inside flushes.
    pub flush_ns: u64,
    /// The slowest single flush observed.
    pub max_flush_ns: u64,
    /// Flushes that exceeded [`WalConfig::flush_slo`].
    pub slo_misses: u64,
    /// Enqueues that found the tail at its watermark and had to block
    /// (saturation events: the commit rate outran the disk).
    pub blocked_enqueues: u64,
    /// Total wall-clock nanoseconds enqueues spent blocked at the
    /// watermark.
    pub blocked_ns: u64,
}

impl GroupStats {
    /// Mean batches per flushed group (0.0 before the first flush).
    pub fn mean_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.batches as f64 / self.groups as f64
        }
    }
}

/// The pending group-commit tail: record bodies enqueued by committers
/// but not yet flushed. Guarded by its own mutex so enqueuers never
/// block behind an in-flight flush's I/O (which holds the segment
/// mutex, not this one).
struct GroupState {
    /// Concatenated [`WalBatch::encode_record`] bodies awaiting flush.
    bodies: Vec<u8>,
    /// End offset of each pending record within `bodies`.
    ends: Vec<usize>,
    /// `commit_ts` of the most recently enqueued record.
    last_ts: u64,
    /// Sequence number of the most recently enqueued record (1-based).
    enqueued: u64,
    /// Every record with sequence `<= durable` is flushed and fsynced.
    durable: u64,
    /// A leader is currently flushing the previously pending records.
    flushing: bool,
    /// Set when a flush failed: its commits were already visible, so the
    /// missing frames cannot be rolled back without creating a replay
    /// gap — all further enqueues and waits get [`WalError::Poisoned`].
    poisoned: bool,
    stats: GroupStats,
}

/// How long a passive group-commit waiter (one relying on a dedicated
/// flusher) waits before electing itself leader anyway — the deadlock
/// backstop for a stalled or missing flusher thread.
const PASSIVE_RESCUE: Duration = Duration::from_millis(20);

/// An append-only write-ahead log over a [`Storage`].
///
/// Thread-safe: appends serialize on an internal mutex (the transactional
/// layer serializes durable commits anyway; the mutex makes direct use
/// safe too). The group-commit path ([`Wal::enqueue`] /
/// [`Wal::wait_durable`]) adds concurrent batch coalescing on top — see
/// the module docs for the two paths' contracts.
pub struct Wal {
    storage: Arc<dyn Storage>,
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    /// Disk-footprint red line (see [`Wal::set_redline`]): while set,
    /// the group tail's effective watermark drops to a single pending
    /// record, so committers feel backpressure at disk speed instead of
    /// growing the log unboundedly.
    redline: AtomicBool,
}

impl Wal {
    /// Open (or create) the log on `storage`, replaying what survives.
    ///
    /// This is crash recovery: intact frames come back in
    /// [`Replay::batches`]; a torn tail is reported in [`Replay::torn`]
    /// and repaired in place (truncated, later segments dropped) so the
    /// returned log is append-ready.
    pub fn open(storage: Arc<dyn Storage>, cfg: WalConfig) -> Result<(Wal, Replay), WalError> {
        let mut seqs: Vec<u64> = storage
            .list()
            .map_err(|e| io_err("list", "<storage>", e))?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        seqs.sort_unstable();

        let mut replay = Replay::default();
        let mut sealed: Vec<SegmentMeta> = Vec::new();
        let mut stop_after: Option<usize> = None; // index into seqs of the torn segment

        for (i, &seq) in seqs.iter().enumerate() {
            if stop_after.is_some() {
                break;
            }
            let name = segment_name(seq);
            let data = storage.read(&name).map_err(|e| io_err("read", &name, e))?;
            replay.segments += 1;

            if data.len() < SEGMENT_HEADER_BYTES as usize
                || &data[..8] != SEGMENT_MAGIC
                || u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")) != seq
            {
                // Unreadable header: nothing in this segment (or beyond
                // it) is trustworthy.
                replay.torn = Some(TornTail {
                    segment: name,
                    offset: 0,
                    reason: "bad segment header",
                });
                stop_after = Some(i);
                continue;
            }

            let mut meta = SegmentMeta {
                seq,
                bytes: data.len() as u64,
                batches: 0,
                last_ts: 0,
            };
            let mut at = SEGMENT_HEADER_BYTES as usize;
            while at < data.len() {
                let before = replay.batches.len();
                match WalBatch::decode_frames(&data, at, &mut replay.batches) {
                    Some(next) => {
                        meta.batches += (replay.batches.len() - before) as u64;
                        if let Some(last) = replay.batches.last() {
                            meta.last_ts = last.commit_ts;
                        }
                        at = next;
                    }
                    None => {
                        // Torn or corrupt: end replay at the last intact
                        // record and repair the file to match.
                        replay.torn = Some(TornTail {
                            segment: name.clone(),
                            offset: at as u64,
                            reason: "torn or corrupt frame",
                        });
                        replay.repaired_bytes = (data.len() - at) as u64;
                        storage
                            .truncate(&name, at as u64)
                            .map_err(|e| io_err("truncate", &name, e))?;
                        meta.bytes = at as u64;
                        stop_after = Some(i);
                        break;
                    }
                }
            }
            sealed.push(meta);
        }

        // Drop everything beyond the torn point: those frames are not
        // part of the recovered prefix.
        if let Some(i) = stop_after {
            for &seq in &seqs[i..] {
                let name = segment_name(seq);
                // The torn segment itself survives (truncated) if its
                // header was good; header-corrupt segments are removed.
                let keep = sealed.last().is_some_and(|m| m.seq == seq);
                if !keep {
                    storage
                        .remove(&name)
                        .map_err(|e| io_err("remove", &name, e))?;
                    replay.dropped_segments += 1;
                }
            }
        }

        // The newest surviving segment becomes the active one; with no
        // survivors, start a fresh log.
        let cur = match sealed.pop() {
            Some(meta) => meta,
            None => {
                let seq = seqs.last().map_or(1, |s| s + 1);
                Self::create_segment(&storage, &cfg.retry, seq)?
            }
        };

        let wal = Wal {
            storage,
            cfg,
            inner: Mutex::new(WalInner {
                sealed,
                cur,
                appends_since_sync: 0,
                scratch: Vec::new(),
                poisoned: false,
            }),
            group: Mutex::new(GroupState {
                bodies: Vec::new(),
                ends: Vec::new(),
                last_ts: 0,
                enqueued: 0,
                durable: 0,
                flushing: false,
                poisoned: false,
                stats: GroupStats::default(),
            }),
            group_cv: Condvar::new(),
            redline: AtomicBool::new(false),
        };
        Ok((wal, replay))
    }

    fn lock(&self) -> MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn create_segment(
        storage: &Arc<dyn Storage>,
        retry: &RetryPolicy,
        seq: u64,
    ) -> Result<SegmentMeta, WalError> {
        let name = segment_name(seq);
        let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&seq.to_le_bytes());
        append_retry(storage, retry, &name, &header)?;
        Ok(SegmentMeta {
            seq,
            bytes: SEGMENT_HEADER_BYTES,
            batches: 0,
            last_ts: 0,
        })
    }

    /// Append one committed batch, honoring the fsync policy. On success
    /// the batch is in the log (and durable, under `FsyncPolicy::Always`);
    /// on `Err` the log is exactly as it was: partial bytes from failed
    /// append attempts are rolled back, and a frame whose *post*-append
    /// fsync or segment roll failed is truncated back off the segment. If
    /// even that rollback fails the log poisons itself — every further
    /// append returns [`WalError::Poisoned`] — so an unacknowledged frame
    /// can never end up buried under acknowledged ones (re-opening the
    /// log repairs and resumes).
    pub fn append(&self, batch: &WalBatch) -> Result<(), WalError> {
        // Drain any pending group first so a mixed serial/group workload
        // still reaches storage in commit order (no-op when the group
        // tail is empty, which is the pure-serial fast path).
        self.flush_pending()?;
        let mut guard = self.lock();
        let inner = &mut *guard;
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        inner.scratch.clear();
        batch.encode_frame(&mut inner.scratch);
        let name = inner.cur.name();
        let prev = inner.cur.clone();
        let prev_since_sync = inner.appends_since_sync;
        append_retry(&self.storage, &self.cfg.retry, &name, &inner.scratch)?;
        inner.cur.bytes += inner.scratch.len() as u64;
        inner.cur.batches += 1;
        inner.cur.last_ts = batch.commit_ts;
        inner.appends_since_sync += 1;

        // The frame is in the log; fsync it per policy and roll the
        // segment if full. Any failure past this point must not surface
        // with the frame still appended (the caller treats `Err` as "the
        // commit did not happen", so a lingering frame would be
        // resurrected by the next recovery).
        let res = (|| -> Result<(), WalError> {
            let flush = match self.cfg.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => inner.appends_since_sync >= n.max(1),
                FsyncPolicy::Off => false,
            };
            if flush {
                self.storage
                    .sync(&name)
                    .map_err(|e| io_err("sync", &name, e))?;
                inner.appends_since_sync = 0;
            }

            if inner.cur.bytes >= self.cfg.segment_bytes {
                // Seal and roll. Sync the sealed segment first so
                // truncation bookkeeping never outruns durability.
                if !flush && self.cfg.fsync != FsyncPolicy::Off {
                    self.storage
                        .sync(&name)
                        .map_err(|e| io_err("sync", &name, e))?;
                    inner.appends_since_sync = 0;
                }
                let next = Self::create_segment(&self.storage, &self.cfg.retry, inner.cur.seq + 1)?;
                let sealed = std::mem::replace(&mut inner.cur, next);
                inner.sealed.push(sealed);
            }
            Ok(())
        })();

        if let Err(e) = res {
            // Take the frame back off the segment (and remove any
            // partially created next segment) so `Err` means the log is
            // unchanged. If the cleanup itself fails the tail is in a
            // state we can no longer reason about: poison the log.
            let next_name = segment_name(prev.seq + 1);
            let cleanup = (|| -> io::Result<()> {
                self.storage.truncate(&name, prev.bytes)?;
                match self.storage.len(&next_name) {
                    Ok(_) => self.storage.remove(&next_name),
                    Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
                    Err(err) => Err(err),
                }
            })();
            match cleanup {
                Ok(()) => {
                    inner.cur = prev;
                    // A successful mid-path sync may be forgotten here;
                    // that only schedules the next group fsync early,
                    // which is always safe.
                    inner.appends_since_sync = prev_since_sync;
                }
                Err(_) => inner.poisoned = true,
            }
            return Err(e);
        }
        Ok(())
    }

    /// Force an fsync of the active segment, first flushing any pending
    /// group-commit records and any pending `EveryN` group.
    pub fn sync(&self) -> Result<(), WalError> {
        self.flush_pending()?;
        let mut inner = self.lock();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        let name = inner.cur.name();
        self.storage
            .sync(&name)
            .map_err(|e| io_err("sync", &name, e))?;
        inner.appends_since_sync = 0;
        Ok(())
    }

    // ---- the group-commit path -------------------------------------

    fn group_lock(&self) -> MutexGuard<'_, GroupState> {
        self.group.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Is the pending tail at (or past) a configured high watermark?
    /// Under the red line any pending record counts as "at the
    /// watermark", so blocking enqueuers drain the tail themselves (one
    /// flush per commit — disk speed) and [`Wal::try_enqueue`] reports
    /// [`WalError::Backpressure`].
    fn over_watermark(&self, g: &GroupState) -> bool {
        let batches = self.cfg.max_pending_batches;
        let bytes = self.cfg.max_pending_bytes;
        (batches > 0 && g.ends.len() >= batches)
            || (bytes > 0 && g.bodies.len() >= bytes)
            || (self.redline.load(Ordering::Relaxed) && !g.ends.is_empty())
    }

    /// Engage (or clear) the disk-footprint **red line** and return the
    /// previous state. While engaged, the group-commit tail admits at
    /// most one pending record: every further enqueue blocks behind a
    /// flush (or gets [`WalError::Backpressure`] from
    /// [`Wal::try_enqueue`]), so commit throughput degrades to disk
    /// speed instead of outrunning a reclamation path that has stopped
    /// keeping up. The maintenance supervisor engages this when
    /// `wal_bytes` crosses its policy's red-line threshold and clears it
    /// once a checkpoint brings the footprint back down. Durability
    /// semantics are untouched — this only narrows the coalescing
    /// window.
    pub fn set_redline(&self, on: bool) -> bool {
        let was = self.redline.swap(on, Ordering::Relaxed);
        if was && !on {
            // Waiters blocked at the narrowed watermark can proceed.
            self.group_cv.notify_all();
        }
        was
    }

    /// Is the red line currently engaged?
    pub fn redline(&self) -> bool {
        self.redline.load(Ordering::Relaxed)
    }

    /// Enqueue one committed batch on the group-commit tail and return
    /// its sequence number for [`Wal::wait_durable`].
    ///
    /// The record enters the commit-ordered pending queue immediately —
    /// this is the "logged" half of logged-before-visible — but is *not*
    /// durable until a flush covers it. With the tail under its
    /// watermark this never blocks on I/O: a flush in progress proceeds
    /// concurrently, and this record simply joins the next group. At the
    /// watermark ([`WalConfig::max_pending_batches`] /
    /// [`WalConfig::max_pending_bytes`]) the call blocks until a flush
    /// drains the tail — electing itself flush leader if no flush is in
    /// progress, so a lone committer that never waits its acks still
    /// makes progress (the bounded queue can never deadlock on a missing
    /// leader; the flush takes only the group and segment locks, never
    /// the caller's commit lock).
    pub fn enqueue(&self, batch: &WalBatch) -> Result<u64, WalError> {
        let mut g = self.group_lock();
        if g.poisoned {
            return Err(WalError::Poisoned);
        }
        if self.over_watermark(&g) {
            g.stats.blocked_enqueues += 1;
            let t0 = Instant::now();
            loop {
                if g.poisoned {
                    g.stats.blocked_ns += t0.elapsed().as_nanos() as u64;
                    return Err(WalError::Poisoned);
                }
                if !self.over_watermark(&g) {
                    break;
                }
                if !g.flushing {
                    // Self-promote: drain the tail ourselves rather than
                    // waiting for an ack-waiter who may never come.
                    g = self.lead_flush(g);
                    continue;
                }
                let (guard, _) = self
                    .group_cv
                    .wait_timeout(g, PASSIVE_RESCUE)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
            }
            g.stats.blocked_ns += t0.elapsed().as_nanos() as u64;
        }
        self.push_record(g, batch)
    }

    /// Non-blocking [`Wal::enqueue`]: at the watermark this returns
    /// [`WalError::Backpressure`] immediately (nothing enqueued, nothing
    /// blocked) instead of waiting for the flusher to drain the tail.
    pub fn try_enqueue(&self, batch: &WalBatch) -> Result<u64, WalError> {
        let mut g = self.group_lock();
        if g.poisoned {
            return Err(WalError::Poisoned);
        }
        if self.over_watermark(&g) {
            g.stats.blocked_enqueues += 1;
            return Err(WalError::Backpressure);
        }
        self.push_record(g, batch)
    }

    /// The enqueue tail end: encode onto the pending tail (the caller
    /// has already cleared poisoning and the watermark) and wake the
    /// flusher.
    fn push_record(
        &self,
        mut g: MutexGuard<'_, GroupState>,
        batch: &WalBatch,
    ) -> Result<u64, WalError> {
        batch.encode_record(&mut g.bodies);
        let end = g.bodies.len();
        g.ends.push(end);
        g.last_ts = batch.commit_ts;
        g.enqueued += 1;
        let seq = g.enqueued;
        drop(g);
        // Wake a dedicated flusher (or passive waiters) parked on the cv.
        self.group_cv.notify_all();
        Ok(seq)
    }

    /// Block until every record enqueued at or before `seq` is flushed
    /// and fsynced. The first waiter to find no flush in progress elects
    /// itself **leader** and performs the flush (one multi-record append,
    /// one fsync) for the whole pending group; the others wait on a
    /// condvar and wake with the result. `Err(Poisoned)` means a flush
    /// failed after the record was already enqueued — see the module docs
    /// for why that cannot be rolled back.
    pub fn wait_durable(&self, seq: u64) -> Result<(), WalError> {
        self.wait_group(seq, true)
    }

    /// [`Wal::wait_durable`] for committers relying on a dedicated
    /// flusher thread: waits passively instead of leading, so the flusher
    /// controls the coalescing window. If no flush covers `seq` within a
    /// short backstop interval the waiter elects itself leader after all
    /// (a stalled or missing flusher must not deadlock commits).
    pub fn wait_durable_passive(&self, seq: u64) -> Result<(), WalError> {
        self.wait_group(seq, false)
    }

    fn wait_group(&self, seq: u64, mut may_lead: bool) -> Result<(), WalError> {
        let mut g = self.group_lock();
        loop {
            if g.durable >= seq {
                return Ok(());
            }
            if g.poisoned {
                return Err(WalError::Poisoned);
            }
            if may_lead && !g.flushing {
                g = self.lead_flush(g);
                continue;
            }
            let (guard, timeout) = self
                .group_cv
                .wait_timeout(g, PASSIVE_RESCUE)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
            if timeout.timed_out() {
                may_lead = true;
            }
        }
    }

    /// Flush every record currently pending on the group tail (leading
    /// the flush, or waiting for an in-progress one that covers them).
    /// Ok and a no-op when nothing is pending.
    pub fn flush_pending(&self) -> Result<(), WalError> {
        let target = {
            let g = self.group_lock();
            if g.poisoned {
                return Err(WalError::Poisoned);
            }
            g.enqueued
        };
        self.wait_group(target, true)
    }

    /// Records enqueued on the group tail but not yet flushed.
    pub fn pending_batches(&self) -> usize {
        self.group_lock().ends.len()
    }

    /// The highest sequence number covered by a completed group flush
    /// (compare with the sequence from [`Wal::enqueue`]).
    pub fn durable_seq(&self) -> u64 {
        self.group_lock().durable
    }

    /// Cumulative group-commit counters.
    pub fn group_stats(&self) -> GroupStats {
        self.group_lock().stats
    }

    /// Become the leader: take the pending records, flush them outside
    /// the group lock, publish the outcome, wake everyone.
    fn lead_flush<'a>(&'a self, mut g: MutexGuard<'a, GroupState>) -> MutexGuard<'a, GroupState> {
        debug_assert!(!g.flushing);
        if g.ends.is_empty() {
            return g;
        }
        g.flushing = true;
        let bodies = std::mem::take(&mut g.bodies);
        let ends = std::mem::take(&mut g.ends);
        let upto = g.enqueued;
        let last_ts = g.last_ts;
        drop(g);

        let t0 = Instant::now();
        let res = self.flush_group(&bodies, &ends, last_ts);
        let flush_ns = t0.elapsed().as_nanos() as u64;

        let mut g = self.group_lock();
        g.flushing = false;
        match res {
            Ok(()) => {
                g.durable = upto;
                g.stats.groups += 1;
                g.stats.batches += ends.len() as u64;
                g.stats.max_group = g.stats.max_group.max(ends.len() as u64);
                g.stats.flush_ns += flush_ns;
                g.stats.max_flush_ns = g.stats.max_flush_ns.max(flush_ns);
                if let Some(slo) = self.cfg.flush_slo {
                    if flush_ns > slo.as_nanos() as u64 {
                        g.stats.slo_misses += 1;
                    }
                }
            }
            Err(_) => g.poisoned = true,
        }
        self.group_cv.notify_all();
        g
    }

    /// The flush I/O: frame the pending record bodies (single-record
    /// frames for lone commits, multi-record group frames otherwise,
    /// chunked at [`GROUP_CHUNK_RECORDS`]), append them in one storage
    /// write, fsync once, and roll the segment if it filled. Serializes
    /// with the serial append path on the segment mutex. Any failure
    /// poisons the segment state (see the module docs).
    fn flush_group(&self, bodies: &[u8], ends: &[usize], last_ts: u64) -> Result<(), WalError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        inner.scratch.clear();
        let mut first = 0usize; // record index where the current chunk starts
        let mut first_byte = 0usize;
        while first < ends.len() {
            let last = (first + GROUP_CHUNK_RECORDS).min(ends.len());
            let chunk = &bodies[first_byte..ends[last - 1]];
            if last - first == 1 {
                frame::encode_single_frame_raw(chunk, &mut inner.scratch);
            } else {
                frame::encode_group_frame_raw(chunk, (last - first) as u32, &mut inner.scratch);
            }
            first_byte = ends[last - 1];
            first = last;
        }

        let name = inner.cur.name();
        let res = (|| -> Result<(), WalError> {
            append_retry(&self.storage, &self.cfg.retry, &name, &inner.scratch)?;
            inner.cur.bytes += inner.scratch.len() as u64;
            inner.cur.batches += ends.len() as u64;
            inner.cur.last_ts = last_ts;
            if self.cfg.fsync != FsyncPolicy::Off {
                self.storage
                    .sync(&name)
                    .map_err(|e| io_err("sync", &name, e))?;
                inner.appends_since_sync = 0;
            }
            if inner.cur.bytes >= self.cfg.segment_bytes {
                let next = Self::create_segment(&self.storage, &self.cfg.retry, inner.cur.seq + 1)?;
                let sealed = std::mem::replace(&mut inner.cur, next);
                inner.sealed.push(sealed);
            }
            Ok(())
        })();
        if res.is_err() {
            // Unlike the serial path there is nothing to roll back to:
            // the group's commits are already visible, so removing their
            // frames would leave a replay-order gap. Refuse everything.
            inner.poisoned = true;
        }
        res
    }

    /// Drop every sealed segment whose batches are all covered by a
    /// checkpoint at `commit_ts` (i.e. whose last batch has
    /// `commit_ts <= ts`). The active segment always survives. Returns
    /// the number of segments removed.
    pub fn truncate_before(&self, commit_ts: u64) -> Result<usize, WalError> {
        let mut inner = self.lock();
        let mut removed = 0;
        while let Some(seg) = inner.sealed.first() {
            if seg.batches > 0 && seg.last_ts > commit_ts {
                break;
            }
            let name = seg.name();
            self.storage
                .remove(&name)
                .map_err(|e| io_err("remove", &name, e))?;
            inner.sealed.remove(0);
            removed += 1;
        }
        Ok(removed)
    }

    /// Segment files currently in the log (sealed + active).
    pub fn segments(&self) -> usize {
        self.lock().sealed.len() + 1
    }

    /// Total bytes across all segments (headers included).
    pub fn bytes(&self) -> u64 {
        let inner = self.lock();
        inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.cur.bytes
    }
}

/// Append with bounded retry and partial-write rollback: transient
/// failures back off exponentially; before each retry any bytes the
/// failed attempt landed are truncated away so a retried frame can never
/// corrupt the middle of the log.
fn append_retry(
    storage: &Arc<dyn Storage>,
    retry: &RetryPolicy,
    name: &str,
    data: &[u8],
) -> Result<(), WalError> {
    let base = match storage.len(name) {
        Ok(l) => l,
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(io_err("len", name, e)),
    };
    let mut backoff = retry.initial_backoff;
    for attempt in 0.. {
        match storage.append(name, data) {
            Ok(()) => return Ok(()),
            Err(e) => {
                // Roll back partial bytes; a failed rollback (storage
                // dead) leaves a torn tail, which recovery handles.
                if let Ok(len) = storage.len(name) {
                    if len > base {
                        let _ = storage.truncate(name, base);
                    }
                }
                if attempt >= retry.attempts {
                    return Err(io_err("append", name, e));
                }
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    }
    unreachable!("loop returns on success or exhausted retries")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::WalOp;
    use crate::{FaultPlan, FaultStorage};

    fn batch(ts: u64) -> WalBatch {
        WalBatch {
            tx_id: ts,
            commit_ts: ts,
            snapshot_ts: ts.saturating_sub(1),
            ops: vec![WalOp::Put(ts.to_le_bytes().to_vec(), vec![0xAB; 16])],
        }
    }

    fn open_mem(storage: &FaultStorage, cfg: WalConfig) -> (Wal, Replay) {
        Wal::open(Arc::new(storage.clone()), cfg).unwrap()
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        for ts in 1..=10 {
            wal.append(&batch(ts)).unwrap();
        }
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        assert_eq!(replay.batches.len(), 10);
        assert!(replay.torn.is_none());
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn segments_rotate_and_truncate() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            segment_bytes: 128, // tiny: force rotation every couple frames
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg.clone());
        for ts in 1..=20 {
            wal.append(&batch(ts)).unwrap();
        }
        assert!(wal.segments() > 2, "rotation never happened");
        let before = wal.segments();
        // A checkpoint at ts=10 retires every segment fully below it.
        let removed = wal.truncate_before(10).unwrap();
        assert!(removed > 0, "no segment retired");
        assert_eq!(wal.segments(), before - removed);
        // Replay after truncation: only batches beyond the dropped
        // segments remain, still contiguous and ending at 20.
        drop(wal);
        let (_, replay) = open_mem(&storage, cfg);
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(*ts.last().unwrap(), 20);
        let first = ts[0];
        assert!(first <= 11, "truncation dropped uncovered batches: {ts:?}");
        assert_eq!(ts, (first..=20).collect::<Vec<_>>(), "gap after truncate");
    }

    #[test]
    fn redline_narrows_the_watermark_to_one_record() {
        let storage = FaultStorage::unfaulted();
        // Roomy watermark: without the red line, dozens of records fit.
        let cfg = WalConfig {
            max_pending_batches: 64,
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg);
        assert!(!wal.set_redline(true), "previously off");
        assert!(wal.redline());
        wal.enqueue(&batch(1)).unwrap(); // an empty tail always admits one
        let err = wal.try_enqueue(&batch(2)).unwrap_err();
        assert!(matches!(err, WalError::Backpressure));
        // A blocking enqueue self-promotes to flush leader and proceeds
        // at disk speed rather than deadlocking.
        let seq = wal.enqueue(&batch(2)).unwrap();
        wal.wait_durable(seq).unwrap();
        assert!(wal.group_stats().blocked_enqueues >= 1);
        // Clearing the red line restores the configured watermark.
        assert!(wal.set_redline(false));
        wal.enqueue(&batch(3)).unwrap();
        wal.try_enqueue(&batch(4)).unwrap();
        wal.flush_pending().unwrap();
        assert_eq!(wal.durable_seq(), 4);
    }

    #[test]
    fn segment_name_recognizer() {
        assert!(is_segment_name("wal-00000001.seg"));
        assert!(is_segment_name(&segment_name(42)));
        assert!(!is_segment_name("wal-1.seg"));
        assert!(!is_segment_name("ckpt-0000000000000001.ck"));
        assert!(!is_segment_name("wal-0000000a.seg"));
    }

    #[test]
    fn torn_tail_truncates_and_log_stays_appendable() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        for ts in 1..=5 {
            wal.append(&batch(ts)).unwrap();
        }
        drop(wal);
        // Injure the tail directly: append half a frame's worth of junk.
        storage.append(&segment_name(1), &[0x77; 9]).unwrap();
        let (wal, replay) = open_mem(&storage, WalConfig::default());
        assert_eq!(replay.batches.len(), 5, "intact prefix survives");
        let torn = replay.torn.expect("tail was torn");
        assert_eq!(torn.reason, "torn or corrupt frame");
        assert_eq!(replay.repaired_bytes, 9);
        // The log is usable immediately: append, reopen, all clean.
        wal.append(&batch(6)).unwrap();
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        assert!(replay.torn.is_none());
        assert_eq!(replay.batches.len(), 6);
    }

    #[test]
    fn corruption_mid_log_drops_later_segments() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            segment_bytes: 128,
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg.clone());
        for ts in 1..=20 {
            wal.append(&batch(ts)).unwrap();
        }
        let segments = wal.segments();
        assert!(segments >= 3);
        drop(wal);
        // Flip a byte in the middle of segment 2's first frame payload.
        let name = segment_name(2);
        let data = storage.read(&name).unwrap();
        let mut patched = data.clone();
        patched[SEGMENT_HEADER_BYTES as usize + 12] ^= 0xFF;
        storage.remove(&name).unwrap();
        storage.append(&name, &patched).unwrap();

        let (_, replay) = open_mem(&storage, cfg);
        let torn = replay.torn.expect("corruption detected");
        assert_eq!(torn.segment, name);
        assert!(
            replay.dropped_segments > 0,
            "segments beyond the corruption must go"
        );
        // Replay is exactly the prefix before the bad frame.
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, (1..=ts.len() as u64).collect::<Vec<_>>());
        assert!((ts.len() as u64) < 20);
    }

    #[test]
    fn transient_append_failures_are_retried() {
        let storage = FaultStorage::new(
            FaultPlan {
                transient_append_failures: 2,
                ..FaultPlan::default()
            },
            11,
        );
        // Even the segment-header append hits the transient faults.
        let (wal, _) = Wal::open(Arc::new(storage.clone()), WalConfig::default()).unwrap();
        wal.append(&batch(1)).unwrap();
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        assert_eq!(replay.batches.len(), 1);
        assert!(replay.torn.is_none());
    }

    #[test]
    fn exhausted_retries_surface_typed_io_error() {
        let storage = FaultStorage::new(
            FaultPlan {
                transient_append_failures: u64::MAX,
                ..FaultPlan::default()
            },
            13,
        );
        let err = match Wal::open(Arc::new(storage), WalConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("open succeeded through a permanently failing storage"),
        };
        match err {
            WalError::Io { op: "append", .. } => {}
            other => panic!("expected append Io error, got {other}"),
        }
    }

    #[test]
    fn failed_fsync_rolls_the_frame_back_off_the_log() {
        // The frame append succeeds but its fsync fails: `append` must
        // return Err with the log *unchanged*, so the caller may safely
        // reuse the commit_ts — the failed frame must never replay.
        let storage = FaultStorage::new(
            FaultPlan {
                transient_sync_failures: 1,
                ..FaultPlan::default()
            },
            19,
        );
        let (wal, _) = open_mem(&storage, WalConfig::default());
        let err = wal
            .append(&batch(1))
            .expect_err("sync was injected to fail");
        assert!(matches!(err, WalError::Io { op: "sync", .. }), "{err}");
        // Same commit_ts again, as the transactional layer would do.
        wal.append(&batch(1)).unwrap();
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        assert!(replay.torn.is_none());
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, vec![1], "exactly one ts=1 frame survives");
    }

    #[test]
    fn unrollbackable_fsync_failure_poisons_the_log() {
        // The fsync crashes the storage, so the rollback truncate fails
        // too: the log must refuse all further appends (the orphan frame
        // cannot be buried under acknowledged ones).
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_sync: Some(0),
                ..FaultPlan::default()
            },
            23,
        );
        let (wal, _) = open_mem(&storage, WalConfig::default());
        let err = wal.append(&batch(1)).expect_err("sync crashes");
        assert!(matches!(err, WalError::Io { op: "sync", .. }), "{err}");
        assert!(matches!(wal.append(&batch(1)), Err(WalError::Poisoned)));
        assert!(matches!(wal.sync(), Err(WalError::Poisoned)));
        // Recovery repairs: at most the one orphan frame replays, and the
        // reopened log accepts appends again.
        let view = storage.crash_view();
        let (wal, replay) = open_mem(&view, WalConfig::default());
        assert!(replay.batches.len() <= 1);
        wal.append(&batch(replay.batches.len() as u64 + 1)).unwrap();
    }

    #[test]
    fn group_enqueue_coalesces_and_replays_in_order() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        // Enqueue a burst before anyone waits: one flush, one group.
        let mut seqs = Vec::new();
        for ts in 1..=6 {
            seqs.push(wal.enqueue(&batch(ts)).unwrap());
        }
        assert_eq!(wal.pending_batches(), 6);
        assert_eq!(wal.durable_seq(), 0);
        wal.wait_durable(*seqs.last().unwrap()).unwrap();
        assert_eq!(wal.pending_batches(), 0);
        assert_eq!(wal.durable_seq(), 6);
        let stats = wal.group_stats();
        assert_eq!(stats.groups, 1, "one coalesced flush");
        assert_eq!(stats.batches, 6);
        assert_eq!(stats.max_group, 6);
        // A lone enqueue flushes as an ordinary single-record frame.
        let s = wal.enqueue(&batch(7)).unwrap();
        wal.wait_durable(s).unwrap();
        assert_eq!(wal.group_stats().groups, 2);
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, (1..=7).collect::<Vec<_>>());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn group_flush_is_one_sync_per_group() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        let syncs_before = storage.syncs();
        for ts in 1..=8 {
            wal.enqueue(&batch(ts)).unwrap();
        }
        wal.flush_pending().unwrap();
        assert_eq!(
            storage.syncs() - syncs_before,
            1,
            "eight commits must share one fsync"
        );
    }

    #[test]
    fn concurrent_group_waiters_all_ack() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        let wal = Arc::new(wal);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..25u64 {
                        let seq = wal.enqueue(&batch(t * 1000 + i + 1)).unwrap();
                        wal.wait_durable(seq).unwrap();
                    }
                });
            }
        });
        assert_eq!(wal.durable_seq(), 100);
        let stats = wal.group_stats();
        assert_eq!(stats.batches, 100);
        assert!(stats.groups <= 100);
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        assert_eq!(replay.batches.len(), 100, "every acked record replays");
    }

    #[test]
    fn failed_group_flush_poisons_instead_of_rolling_back() {
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_sync: Some(0),
                ..FaultPlan::default()
            },
            31,
        );
        let (wal, _) = open_mem(&storage, WalConfig::default());
        let s1 = wal.enqueue(&batch(1)).unwrap();
        let s2 = wal.enqueue(&batch(2)).unwrap();
        assert!(matches!(wal.wait_durable(s1), Err(WalError::Poisoned)));
        assert!(matches!(wal.wait_durable(s2), Err(WalError::Poisoned)));
        // Everything downstream refuses too: no frame can be buried
        // after the group whose durability was never acknowledged.
        assert!(matches!(wal.enqueue(&batch(3)), Err(WalError::Poisoned)));
        assert!(matches!(wal.append(&batch(3)), Err(WalError::Poisoned)));
        // Recovery repairs: at most the crashed group replays, and the
        // reopened log accepts work again.
        let view = storage.crash_view();
        let (wal, replay) = open_mem(&view, WalConfig::default());
        assert!(replay.batches.len() <= 2);
        wal.append(&batch(replay.batches.len() as u64 + 1)).unwrap();
    }

    #[test]
    fn group_flush_rolls_segments() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            segment_bytes: 128,
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg.clone());
        for round in 0..10u64 {
            for i in 0..4u64 {
                wal.enqueue(&batch(round * 4 + i + 1)).unwrap();
            }
            wal.flush_pending().unwrap();
        }
        assert!(wal.segments() > 2, "group flushes must roll segments");
        drop(wal);
        let (_, replay) = open_mem(&storage, cfg);
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, (1..=40).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_tail_blocks_enqueue_and_self_promotes() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            max_pending_batches: 4,
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg);
        // A lone committer that never waits its acks: the 5th enqueue
        // hits the watermark and must flush the tail itself rather than
        // deadlock waiting for an ack-waiter that never comes.
        for ts in 1..=12 {
            wal.enqueue(&batch(ts)).unwrap();
        }
        let stats = wal.group_stats();
        assert!(
            stats.blocked_enqueues >= 2,
            "12 enqueues over a 4-deep tail must block: {stats:?}"
        );
        assert!(stats.groups >= 2, "blocked enqueues must have led flushes");
        assert!(wal.pending_batches() <= 4, "tail stayed bounded");
        wal.flush_pending().unwrap();
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(
            ts,
            (1..=12).collect::<Vec<_>>(),
            "nothing lost or reordered"
        );
    }

    #[test]
    fn try_enqueue_returns_backpressure_at_the_watermark() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            max_pending_batches: 2,
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg);
        wal.try_enqueue(&batch(1)).unwrap();
        wal.try_enqueue(&batch(2)).unwrap();
        assert!(matches!(
            wal.try_enqueue(&batch(3)),
            Err(WalError::Backpressure)
        ));
        assert_eq!(wal.pending_batches(), 2, "refused record not enqueued");
        // Draining the tail re-opens admission.
        wal.flush_pending().unwrap();
        wal.try_enqueue(&batch(3)).unwrap();
        wal.flush_pending().unwrap();
        assert!(wal.group_stats().blocked_enqueues >= 1);
        drop(wal);
        let (_, replay) = open_mem(&storage, WalConfig::default());
        let ts: Vec<u64> = replay.batches.iter().map(|b| b.commit_ts).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn byte_watermark_and_slo_counters_trip() {
        let storage = FaultStorage::unfaulted();
        let cfg = WalConfig {
            max_pending_bytes: 1, // any pending record trips it
            flush_slo: Some(Duration::ZERO),
            ..WalConfig::default()
        };
        let (wal, _) = open_mem(&storage, cfg);
        wal.enqueue(&batch(1)).unwrap();
        // The second enqueue finds a pending byte and must flush first.
        wal.enqueue(&batch(2)).unwrap();
        wal.flush_pending().unwrap();
        let stats = wal.group_stats();
        assert!(stats.blocked_enqueues >= 1);
        assert!(stats.max_flush_ns > 0);
        assert_eq!(
            stats.slo_misses, stats.groups,
            "a zero SLO counts every flush as a miss"
        );
    }

    #[test]
    fn short_read_ends_replay_gracefully() {
        let storage = FaultStorage::unfaulted();
        let (wal, _) = open_mem(&storage, WalConfig::default());
        for ts in 1..=8 {
            wal.append(&batch(ts)).unwrap();
        }
        drop(wal);
        // The next read of the segment returns a prefix: recovery must
        // degrade to the intact records it saw, not panic.
        let short = FaultStorage::new(
            FaultPlan {
                short_read_at: Some(0),
                ..FaultPlan::default()
            },
            17,
        );
        for name in storage.list().unwrap() {
            short.append(&name, &storage.read(&name).unwrap()).unwrap();
        }
        let (_, replay) = open_mem(&short, WalConfig::default());
        assert!(replay.batches.len() <= 8);
        for (i, b) in replay.batches.iter().enumerate() {
            assert_eq!(b.commit_ts, i as u64 + 1, "prefix, in order");
        }
    }
}
