//! Snapshot checkpoints: a full key/value image at one `commit_ts`.
//!
//! A checkpoint lets recovery skip replaying the log from the beginning
//! of time, and lets the log retire sealed segments (see
//! [`crate::Wal::truncate_before`]). The write protocol makes publication
//! atomic with respect to crashes:
//!
//! 1. the image is written to a *temporary* name (`ckpt-<ts>.tmp`),
//! 2. sealed with a trailing CRC-32 over the whole body and fsynced,
//! 3. renamed to its final name (`ckpt-<ts>.ck`).
//!
//! A crash before the rename leaves only a `.tmp` the next writer
//! overwrites; a crash after it leaves a fully validated checkpoint.
//! [`load_latest`] walks the published checkpoints newest-first and falls
//! back across corrupt ones, so a bad checkpoint degrades recovery to the
//! previous one (plus a longer WAL replay), never to a failure.
//!
//! ```text
//! checkpoint := b"MVCKPT02" [ts: u64 le] [next_tx: u64 le]
//!               [count: u64 le] entry*
//!               [crc32(everything before): u32 le]
//! entry      := [klen: u32 le] key [vlen: u32 le] value
//! ```

use crate::frame::{crc32, Reader};
use crate::{io_err, Storage, WalError};

const CKPT_MAGIC: &[u8; 8] = b"MVCKPT02";
/// Published checkpoints kept after a successful write (newest first);
/// older ones are pruned. [`write_checkpoint_keep`] overrides this
/// per-call for policy-driven retention.
pub const KEEP_CHECKPOINTS: usize = 2;

fn final_name(ts: u64) -> String {
    format!("ckpt-{ts:016x}.ck")
}

fn tmp_name(ts: u64) -> String {
    format!("ckpt-{ts:016x}.tmp")
}

fn parse_final_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded, CRC-validated checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The commit timestamp the image is a snapshot of: every batch with
    /// `commit_ts <= ts` is reflected, none after.
    pub ts: u64,
    /// The transaction-id high-water mark at `ts`: the next `tx_id` the
    /// commit clock would assign. Recovery takes the max of this and the
    /// replayed tail so `tx_id` stays monotone even when checkpoint
    /// truncation has left the WAL tail empty.
    pub next_tx: u64,
    /// The full key/value contents at `ts`, in the order the writer
    /// emitted them (key order, for the transactional layer's walk).
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Streams entries into an in-progress checkpoint image. Handed to the
/// closure given to [`write_checkpoint`]; the caller walks its snapshot
/// and calls [`CheckpointWriter::entry`] per pair.
pub struct CheckpointWriter {
    buf: Vec<u8>,
    count: u64,
}

impl CheckpointWriter {
    /// Append one key/value pair to the image.
    pub fn entry(&mut self, key: &[u8], value: &[u8]) {
        self.buf
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
        self.count += 1;
    }

    /// Pairs written so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Write and atomically publish a checkpoint of the database at `ts`.
///
/// `fill` receives a [`CheckpointWriter`] and emits every key/value pair
/// of the snapshot; this crate neither knows nor cares how the caller
/// walks it (in mvcc-core it is a pinned version traversed while writers
/// proceed). Returns the published file name. On success, all but the
/// newest two checkpoints and any stale `.tmp` files are pruned.
pub fn write_checkpoint(
    storage: &dyn Storage,
    ts: u64,
    next_tx: u64,
    fill: impl FnOnce(&mut CheckpointWriter) -> Result<(), WalError>,
) -> Result<String, WalError> {
    write_checkpoint_keep(storage, ts, next_tx, KEEP_CHECKPOINTS, fill)
}

/// [`write_checkpoint`] with an explicit retention depth: after a
/// successful publish, all but the newest `keep` checkpoints are pruned
/// (`keep` is clamped to at least 1 — pruning the image just written
/// would defeat the point).
pub fn write_checkpoint_keep(
    storage: &dyn Storage,
    ts: u64,
    next_tx: u64,
    keep: usize,
    fill: impl FnOnce(&mut CheckpointWriter) -> Result<(), WalError>,
) -> Result<String, WalError> {
    let mut w = CheckpointWriter {
        buf: Vec::with_capacity(64 * 1024),
        count: 0,
    };
    w.buf.extend_from_slice(CKPT_MAGIC);
    w.buf.extend_from_slice(&ts.to_le_bytes());
    w.buf.extend_from_slice(&next_tx.to_le_bytes());
    w.buf.extend_from_slice(&0u64.to_le_bytes()); // count, patched below
    fill(&mut w)?;
    let count = w.count;
    w.buf[24..32].copy_from_slice(&count.to_le_bytes());
    let crc = crc32(&w.buf);
    w.buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_name(ts);
    let name = final_name(ts);
    // A leftover tmp from a crashed writer must not pollute this image.
    match storage.remove(&tmp) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err("remove", &tmp, e)),
    }
    storage
        .append(&tmp, &w.buf)
        .map_err(|e| io_err("append", &tmp, e))?;
    storage.sync(&tmp).map_err(|e| io_err("sync", &tmp, e))?;
    storage
        .rename(&tmp, &name)
        .map_err(|e| io_err("rename", &tmp, e))?;

    prune(storage, keep)?;
    Ok(name)
}

/// Remove published checkpoints beyond the newest `keep` and any stale
/// `.tmp` leftovers.
fn prune(storage: &dyn Storage, keep: usize) -> Result<(), WalError> {
    let names = storage.list().map_err(|e| io_err("list", "<storage>", e))?;
    let mut published: Vec<u64> = names.iter().filter_map(|n| parse_final_name(n)).collect();
    published.sort_unstable_by(|a, b| b.cmp(a));
    for &old in published.iter().skip(keep.max(1)) {
        let name = final_name(old);
        storage
            .remove(&name)
            .map_err(|e| io_err("remove", &name, e))?;
    }
    sweep_stale_tmp(storage)?;
    Ok(())
}

/// Remove `ckpt-*.tmp` leftovers from a checkpointer that crashed between
/// the tmp write and the publishing rename. Returns how many were swept.
///
/// Called by recovery as well as after every successful
/// [`write_checkpoint`]: before this hook existed, a crash-then-recover
/// sequence leaked tmp files until the *next successful* checkpoint,
/// which on a degraded disk may never come.
pub fn sweep_stale_tmp(storage: &dyn Storage) -> Result<usize, WalError> {
    let names = storage.list().map_err(|e| io_err("list", "<storage>", e))?;
    let mut swept = 0;
    for name in names {
        if name.starts_with("ckpt-") && name.ends_with(".tmp") {
            match storage.remove(&name) {
                Ok(()) => swept += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("remove", &name, e)),
            }
        }
    }
    Ok(swept)
}

fn decode(data: &[u8]) -> Option<Checkpoint> {
    if data.len() < CKPT_MAGIC.len() + 24 + 4 || &data[..8] != CKPT_MAGIC {
        return None;
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return None;
    }
    let mut r = Reader::new(&body[8..]);
    let ts = r.u64()?;
    let next_tx = r.u64()?;
    let count = r.u64()?;
    let mut entries = Vec::with_capacity((count as usize).min(body.len()));
    for _ in 0..count {
        let klen = r.u32()? as usize;
        let k = r.bytes(klen)?.to_vec();
        let vlen = r.u32()? as usize;
        let v = r.bytes(vlen)?.to_vec();
        entries.push((k, v));
    }
    if !r.is_empty() {
        return None;
    }
    Some(Checkpoint {
        ts,
        next_tx,
        entries,
    })
}

/// Load the newest valid published checkpoint, falling back across
/// corrupt (or vanished) ones. `Ok(None)` means no checkpoint survives —
/// recovery then replays the WAL from its start against an empty
/// database.
pub fn load_latest(storage: &dyn Storage) -> Result<Option<Checkpoint>, WalError> {
    let mut published: Vec<u64> = storage
        .list()
        .map_err(|e| io_err("list", "<storage>", e))?
        .iter()
        .filter_map(|n| parse_final_name(n))
        .collect();
    published.sort_unstable_by(|a, b| b.cmp(a));
    for ts in published {
        let name = final_name(ts);
        let data = match storage.read(&name) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(io_err("read", &name, e)),
        };
        if let Some(ckpt) = decode(&data) {
            return Ok(Some(ckpt));
        }
        // Corrupt: fall back to the next-newest. Graceful degradation is
        // the contract — a bad checkpoint costs replay time, not data.
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultStorage;

    fn write(storage: &FaultStorage, ts: u64, n: u64) -> String {
        write_checkpoint(storage, ts, ts + 1, |w| {
            for i in 0..n {
                w.entry(&i.to_le_bytes(), format!("v{i}@{ts}").as_bytes());
            }
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn roundtrip_and_latest_wins() {
        let storage = FaultStorage::unfaulted();
        write(&storage, 10, 3);
        write(&storage, 25, 5);
        let ckpt = load_latest(&storage).unwrap().expect("checkpoint");
        assert_eq!(ckpt.ts, 25);
        assert_eq!(ckpt.next_tx, 26, "tx high-water mark round-trips");
        assert_eq!(ckpt.entries.len(), 5);
        assert_eq!(ckpt.entries[2].1, b"v2@25");
    }

    #[test]
    fn prunes_to_newest_two_and_clears_tmp() {
        let storage = FaultStorage::unfaulted();
        for ts in [1, 2, 3, 4] {
            write(&storage, ts, 1);
        }
        // Simulate a crashed writer's leftover tmp.
        storage.append(&tmp_name(99), b"half a checkpoint").unwrap();
        write(&storage, 5, 1);
        let mut names = storage.list().unwrap();
        names.sort();
        assert_eq!(names, vec![final_name(4), final_name(5)]);
    }

    #[test]
    fn keep_depth_is_respected_and_clamped() {
        let storage = FaultStorage::unfaulted();
        for ts in [1, 2, 3, 4, 5] {
            write_checkpoint_keep(&storage, ts, ts + 1, 3, |w| {
                w.entry(b"k", b"v");
                Ok(())
            })
            .unwrap();
        }
        let mut names = storage.list().unwrap();
        names.sort();
        assert_eq!(names, vec![final_name(3), final_name(4), final_name(5)]);
        // keep = 0 clamps to 1: the image just written survives.
        write_checkpoint_keep(&storage, 6, 7, 0, |_| Ok(())).unwrap();
        assert_eq!(storage.list().unwrap(), vec![final_name(6)]);
    }

    #[test]
    fn sweep_stale_tmp_counts_and_spares_published() {
        let storage = FaultStorage::unfaulted();
        write(&storage, 8, 1);
        storage.append(&tmp_name(11), b"torn").unwrap();
        storage.append(&tmp_name(12), b"torn too").unwrap();
        assert_eq!(sweep_stale_tmp(&storage).unwrap(), 2);
        assert_eq!(storage.list().unwrap(), vec![final_name(8)]);
        assert_eq!(sweep_stale_tmp(&storage).unwrap(), 0, "idempotent");
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let storage = FaultStorage::unfaulted();
        write(&storage, 7, 2);
        let newest = write(&storage, 9, 2);
        // Flip one byte in the newest image.
        let mut data = storage.read(&newest).unwrap();
        data[10] ^= 0x01;
        storage.remove(&newest).unwrap();
        storage.append(&newest, &data).unwrap();
        let ckpt = load_latest(&storage).unwrap().expect("fallback");
        assert_eq!(ckpt.ts, 7);
    }

    #[test]
    fn all_corrupt_means_none() {
        let storage = FaultStorage::unfaulted();
        let name = write(&storage, 3, 1);
        storage.truncate(&name, 10).unwrap();
        assert_eq!(load_latest(&storage).unwrap(), None);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let storage = FaultStorage::unfaulted();
        write_checkpoint(&storage, 0, 1, |_| Ok(())).unwrap();
        let ckpt = load_latest(&storage).unwrap().expect("empty checkpoint");
        assert_eq!(ckpt.ts, 0);
        assert_eq!(ckpt.next_tx, 1);
        assert!(ckpt.entries.is_empty());
    }
}
