//! Fault-injection storage: an in-memory [`Storage`] double that can
//! tear writes, fail fsyncs, drop unsynced bytes, flip bits and die at
//! any write or sync site.
//!
//! The crash model mirrors a real kernel's: an `append` lands in the
//! "page cache" (the in-memory buffer) immediately, and `sync` advances
//! the durable watermark. A crash freezes the storage — every subsequent
//! operation fails with an I/O error, exactly what a dying process would
//! see — and [`FaultStorage::crash_view`] then reconstructs what a
//! restarted process would find on disk:
//!
//! * the append the crash interrupted survives only as a seeded-length
//!   prefix (a **torn write**);
//! * with [`FaultPlan::drop_unsynced`], everything past each file's sync
//!   watermark is lost (the page cache never made it out);
//! * with [`FaultPlan::bit_flip_on_crash`], one seeded bit in the
//!   surviving unsynced region is inverted (a medium error the CRC must
//!   catch).
//!
//! Deterministic: the same seed and plan produce the same damage, so
//! every failure a property test finds replays exactly.

use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::Storage;

/// What should go wrong, and when. Counters index *append calls* across
/// all files (the WAL's frames, segment headers and checkpoint bytes all
/// count), so sweeping `crash_at_append` over `0..total_appends` visits a
/// crash-point at every write site of a workload.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash *during* the Nth append (0-based): a seeded prefix of that
    /// append's bytes lands, the call fails, and the storage is frozen.
    pub crash_at_append: Option<u64>,
    /// At crash time, lose every byte past each file's sync watermark
    /// (models a power failure rather than a process kill).
    pub drop_unsynced: bool,
    /// At crash time, flip one seeded bit somewhere in the surviving
    /// unsynced bytes (if any).
    pub bit_flip_on_crash: bool,
    /// The first N append calls fail transiently (nothing is written);
    /// appends after that succeed. Exercises the retry/backoff path.
    pub transient_append_failures: u64,
    /// The Nth `read` call returns only a seeded prefix of the file — a
    /// short read the replay path must treat as a torn tail.
    pub short_read_at: Option<u64>,
    /// Crash *during* the Nth `sync` call (0-based): the durable
    /// watermark does not advance, the call fails, and the storage is
    /// frozen — the fsync-failure analogue of `crash_at_append`.
    pub crash_at_sync: Option<u64>,
    /// The first N `sync` calls fail transiently (the watermark does not
    /// advance); syncs after that succeed. Exercises the post-append
    /// rollback path in [`crate::Wal::append`].
    pub transient_sync_failures: u64,
    /// Disk-exhaustion budget: once the bytes stored across *all* files
    /// reach this total, further appends fail with
    /// [`std::io::ErrorKind::StorageFull`] and write nothing. Removing or
    /// truncating files frees budget, so checkpoint-driven segment
    /// truncation is the cure — exactly the ENOSPC shape a maintenance
    /// supervisor has to survive.
    pub enospc_after_bytes: Option<u64>,
    /// The first N appends to checkpoint files (`ckpt-*`) fail
    /// transiently; WAL segment writes are untouched. Exercises the
    /// supervisor's retry/backoff path without stalling commits.
    pub transient_checkpoint_failures: u64,
    /// Every append to a checkpoint file (`ckpt-*`) fails. Models a
    /// persistently broken checkpoint path: commits must keep flowing
    /// while maintenance degrades to a typed health state.
    pub fail_checkpoint_writes: bool,
}

#[derive(Debug, Clone, Default)]
struct FileState {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Debug)]
struct Inner {
    files: BTreeMap<String, FileState>,
    plan: FaultPlan,
    appends: u64,
    reads: u64,
    syncs: u64,
    ckpt_appends: u64,
    crashed: bool,
    rng: u64,
}

impl Inner {
    fn used_bytes(&self) -> u64 {
        self.files.values().map(|f| f.data.len() as u64).sum()
    }
}

impl Inner {
    /// xorshift64*; deterministic per seed.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn crashed_err() -> io::Error {
    io::Error::other("storage crashed (fault injection)")
}

fn transient_err() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "transient I/O fault (injected)")
}

fn enospc_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        "no space left on device (injected)",
    )
}

fn ckpt_err() -> io::Error {
    io::Error::other("checkpoint write fault (injected)")
}

/// The in-memory fault-injection [`Storage`]. Cloning shares the
/// underlying files (the handle is an `Arc`), so a test can keep a handle
/// while the WAL owns another.
#[derive(Clone)]
pub struct FaultStorage {
    inner: Arc<Mutex<Inner>>,
}

impl FaultStorage {
    /// A storage with the given fault plan and RNG seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultStorage {
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
                plan,
                appends: 0,
                reads: 0,
                syncs: 0,
                ckpt_appends: 0,
                crashed: false,
                rng: seed | 1,
            })),
        }
    }

    /// A plain in-memory storage that never fails.
    pub fn unfaulted() -> Self {
        Self::new(FaultPlan::default(), 1)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Total append calls observed so far (crashed or not). Run a
    /// workload once against [`FaultStorage::unfaulted`] to learn its
    /// write-site count, then sweep `crash_at_append` over `0..count`.
    pub fn appends(&self) -> u64 {
        self.lock().appends
    }

    /// Total `sync` calls observed so far (crashed or not) — the
    /// `crash_at_sync` analogue of [`FaultStorage::appends`].
    pub fn syncs(&self) -> u64 {
        self.lock().syncs
    }

    /// Has an injected crash frozen this storage?
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Crash immediately (no torn write): freeze the storage as-is.
    pub fn crash_now(&self) {
        self.lock().crashed = true;
    }

    /// What a restarted process finds: a fresh, fault-free storage
    /// seeded with the post-crash file contents (torn tail kept,
    /// unsynced bytes dropped and bits flipped per the plan). Also
    /// callable before a crash, in which case it is a plain snapshot.
    pub fn crash_view(&self) -> FaultStorage {
        let mut inner = self.lock();
        let mut files = inner.files.clone();
        if inner.plan.drop_unsynced {
            for f in files.values_mut() {
                f.data.truncate(f.synced);
            }
        }
        if inner.plan.bit_flip_on_crash {
            // Collect the surviving unsynced regions and flip one bit.
            let mut candidates: Vec<(String, usize)> = Vec::new();
            for (name, f) in &files {
                for at in f.synced..f.data.len() {
                    candidates.push((name.clone(), at));
                }
            }
            if !candidates.is_empty() {
                let pick = (inner.next_rand() % candidates.len() as u64) as usize;
                let bit = (inner.next_rand() % 8) as u8;
                let (name, at) = &candidates[pick];
                files.get_mut(name).expect("candidate exists").data[*at] ^= 1 << bit;
            }
        }
        for f in files.values_mut() {
            f.synced = f.data.len();
        }
        let seed = inner.next_rand();
        FaultStorage {
            inner: Arc::new(Mutex::new(Inner {
                files,
                plan: FaultPlan::default(),
                appends: 0,
                reads: 0,
                syncs: 0,
                ckpt_appends: 0,
                crashed: false,
                rng: seed | 1,
            })),
        }
    }
}

impl Storage for FaultStorage {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        let n = inner.appends;
        inner.appends += 1;
        if n < inner.plan.transient_append_failures {
            return Err(transient_err());
        }
        if inner.plan.crash_at_append == Some(n) {
            // Torn write: a seeded prefix lands, then the lights go out.
            let keep = (inner.next_rand() % (data.len() as u64 + 1)) as usize;
            let prefix = data[..keep].to_vec();
            inner
                .files
                .entry(name.to_string())
                .or_default()
                .data
                .extend_from_slice(&prefix);
            inner.crashed = true;
            return Err(crashed_err());
        }
        if name.starts_with("ckpt-") {
            let c = inner.ckpt_appends;
            inner.ckpt_appends += 1;
            if inner.plan.fail_checkpoint_writes {
                return Err(ckpt_err());
            }
            if c < inner.plan.transient_checkpoint_failures {
                return Err(transient_err());
            }
        }
        if let Some(budget) = inner.plan.enospc_after_bytes {
            if inner.used_bytes() + data.len() as u64 > budget {
                return Err(enospc_err());
            }
        }
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        let n = inner.syncs;
        inner.syncs += 1;
        if n < inner.plan.transient_sync_failures {
            return Err(transient_err());
        }
        if inner.plan.crash_at_sync == Some(n) {
            // The watermark never advances: whatever was unsynced is at
            // the mercy of `drop_unsynced` at crash-view time.
            inner.crashed = true;
            return Err(crashed_err());
        }
        match inner.files.get_mut(name) {
            Some(f) => {
                f.synced = f.data.len();
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        let n = inner.reads;
        inner.reads += 1;
        let data = match inner.files.get(name) {
            Some(f) => f.data.clone(),
            None => return Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        };
        if inner.plan.short_read_at == Some(n) {
            let keep = (inner.next_rand() % (data.len() as u64 + 1)) as usize;
            return Ok(data[..keep].to_vec());
        }
        Ok(data)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        match inner.files.get(name) {
            Some(f) => Ok(f.data.len() as u64),
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        match inner.files.get_mut(name) {
            Some(f) => {
                f.data.truncate(len as usize);
                f.synced = f.synced.min(f.data.len());
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        match inner.files.remove(name) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        match inner.files.remove(from) {
            Some(f) => {
                inner.files.insert(to.to_string(), f);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, from.to_string())),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let inner = self.lock();
        if inner.crashed {
            return Err(crashed_err());
        }
        Ok(inner.files.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_at_append_tears_and_freezes() {
        let s = FaultStorage::new(
            FaultPlan {
                crash_at_append: Some(1),
                ..FaultPlan::default()
            },
            42,
        );
        s.append("f", b"first").unwrap();
        let err = s.append("f", b"second").unwrap_err();
        assert!(err.to_string().contains("crashed"));
        assert!(s.crashed());
        assert!(s.append("f", b"more").is_err(), "frozen after crash");
        assert!(s.read("f").is_err(), "reads fail after crash too");
        let view = s.crash_view();
        let data = view.read("f").unwrap();
        assert!(data.starts_with(b"first"));
        assert!(data.len() <= b"first".len() + b"second".len());
        // The recovered view is fault-free.
        view.append("f", b"!").unwrap();
    }

    #[test]
    fn drop_unsynced_truncates_to_watermark() {
        let s = FaultStorage::new(
            FaultPlan {
                drop_unsynced: true,
                ..FaultPlan::default()
            },
            7,
        );
        s.append("f", b"durable").unwrap();
        s.sync("f").unwrap();
        s.append("f", b" volatile").unwrap();
        s.crash_now();
        assert_eq!(s.crash_view().read("f").unwrap(), b"durable");
    }

    #[test]
    fn bit_flip_changes_exactly_one_unsynced_bit() {
        let s = FaultStorage::new(
            FaultPlan {
                bit_flip_on_crash: true,
                ..FaultPlan::default()
            },
            99,
        );
        s.append("f", b"synced").unwrap();
        s.sync("f").unwrap();
        s.append("f", b"tail").unwrap();
        s.crash_now();
        let got = s.crash_view().read("f").unwrap();
        let want = b"syncedtail";
        let diff_bits: u32 = got
            .iter()
            .zip(want.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1, "exactly one bit flipped: {got:?}");
        assert_eq!(&got[..6], b"synced", "synced region untouched");
    }

    #[test]
    fn transient_failures_then_success() {
        let s = FaultStorage::new(
            FaultPlan {
                transient_append_failures: 2,
                ..FaultPlan::default()
            },
            3,
        );
        assert!(s.append("f", b"x").is_err());
        assert!(s.append("f", b"x").is_err());
        s.append("f", b"x").unwrap();
        assert_eq!(s.read("f").unwrap(), b"x", "failed attempts wrote nothing");
    }

    #[test]
    fn sync_faults_fail_without_advancing_the_watermark() {
        let s = FaultStorage::new(
            FaultPlan {
                transient_sync_failures: 1,
                crash_at_sync: Some(1),
                drop_unsynced: true,
                ..FaultPlan::default()
            },
            21,
        );
        s.append("f", b"data").unwrap();
        assert!(s.sync("f").is_err(), "sync 0 fails transiently");
        assert!(!s.crashed());
        assert!(s.sync("f").is_err(), "sync 1 crashes");
        assert!(s.crashed());
        assert_eq!(s.syncs(), 2);
        // Neither sync advanced the watermark: power loss drops it all.
        assert_eq!(s.crash_view().read("f").unwrap(), b"");
    }

    #[test]
    fn short_read_returns_prefix() {
        let s = FaultStorage::new(
            FaultPlan {
                short_read_at: Some(0),
                ..FaultPlan::default()
            },
            5,
        );
        s.append("f", b"0123456789").unwrap();
        let short = s.read("f").unwrap();
        assert!(short.len() <= 10);
        assert_eq!(&short[..], &b"0123456789"[..short.len()]);
        assert_eq!(s.read("f").unwrap().len(), 10, "only the Nth read is short");
    }

    #[test]
    fn enospc_budget_fails_full_appends_and_frees_on_remove() {
        let s = FaultStorage::new(
            FaultPlan {
                enospc_after_bytes: Some(10),
                ..FaultPlan::default()
            },
            11,
        );
        s.append("a", b"12345678").unwrap(); // 8 of 10 bytes used
        let err = s.append("a", b"xyz").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(
            s.read("a").unwrap(),
            b"12345678",
            "failed append wrote nothing"
        );
        assert!(!s.crashed(), "ENOSPC is an error, not a crash");
        s.append("b", b"12").unwrap(); // exactly at the budget
        s.remove("a").unwrap(); // reclamation frees budget
        s.append("b", b"12345678").unwrap();
        assert_eq!(s.read("b").unwrap(), b"1212345678");
    }

    #[test]
    fn checkpoint_faults_scope_to_ckpt_files() {
        let s = FaultStorage::new(
            FaultPlan {
                transient_checkpoint_failures: 2,
                ..FaultPlan::default()
            },
            13,
        );
        s.append("wal-00000001.seg", b"frame").unwrap();
        assert!(s.append("ckpt-0001.tmp", b"img").is_err());
        s.append("wal-00000001.seg", b"frame").unwrap();
        assert!(s.append("ckpt-0001.tmp", b"img").is_err());
        s.append("ckpt-0001.tmp", b"img").unwrap();

        let s = FaultStorage::new(
            FaultPlan {
                fail_checkpoint_writes: true,
                ..FaultPlan::default()
            },
            17,
        );
        for _ in 0..4 {
            assert!(s.append("ckpt-0002.tmp", b"img").is_err(), "permanent");
            s.append("wal-00000001.seg", b"frame").unwrap();
        }
        assert!(!s.crashed());
    }

    #[test]
    fn deterministic_per_seed() {
        for seed in [1u64, 2, 3] {
            let mk = || {
                let s = FaultStorage::new(
                    FaultPlan {
                        crash_at_append: Some(0),
                        ..FaultPlan::default()
                    },
                    seed,
                );
                let _ = s.append("f", b"abcdefgh");
                s.crash_view().read("f").unwrap()
            };
            assert_eq!(mk(), mk(), "same seed, same tear");
        }
    }
}
