//! # mvcc-index — a weighted inverted index on the transactional framework
//!
//! The paper's §7.2 application: map each *term* to a *posting list* of
//! `(document, weight)` pairs, support adding/removing whole documents
//! **atomically** (one write transaction per batch of documents — queries
//! never observe a partially indexed document), and run concurrent
//! "and"-queries that intersect two posting lists and return the top-k
//! documents by combined weight — all on snapshots, so queries never block
//! the writer and vice versa.
//!
//! The outer term tree is an `mvcc-ftree` map augmented with the maximum
//! posting weight in each subtree (the paper's augmentation). Posting
//! lists are immutable sorted arrays behind `Arc` — per DESIGN.md this
//! substitutes for PAM's nested inner trees: merging on union gives the
//! same atomic-visibility semantics with coarser sharing, and mirrors how
//! production indexes store postings.
//!
//! ## Parallelism
//!
//! Both the bulk entry points ([`IndexSession::add_documents`] /
//! [`IndexSession::remove_documents`], which bottom out in `mvcc-ftree`'s
//! `multi_insert`/`filter`) and the query-side [`intersect`] fork onto
//! the work-stealing pool behind `rayon::join` above a sequential cutoff.
//! The ingestion paths run inside the session's pinned allocation
//! context; subtasks stolen by other pool threads re-pin to their own
//! arena shard (`mvcc-ftree`'s per-task contexts), so a large batch
//! spreads across the sharded allocator instead of serializing on the
//! session's freelist. `MVCC_POOL_THREADS=1` forces everything
//! sequential (see the `rayon` shim docs).

use std::sync::Arc;

use mvcc_core::{Database, Session, SessionError};
use mvcc_ftree::TreeParams;
use mvcc_vm::{PswfVm, VersionMaintenance};

/// One posting: `(document id, weight)`.
pub type Posting = (u64, u64);

/// An immutable, doc-sorted posting list with its maximum weight cached
/// (the augmentation the outer tree folds).
#[derive(Debug, Clone)]
pub struct PostingList {
    postings: Arc<[Posting]>,
    max_weight: u64,
}

impl PostingList {
    /// Build from postings sorted by document id (asserted in debug).
    pub fn from_sorted(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].0 < w[1].0));
        let max_weight = postings.iter().map(|p| p.1).max().unwrap_or(0);
        PostingList {
            postings: postings.into(),
            max_weight,
        }
    }

    /// The postings, sorted by document id.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Number of documents containing the term.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Largest weight in the list.
    pub fn max_weight(&self) -> u64 {
        self.max_weight
    }

    /// Merge two sorted lists; on duplicate documents `other` wins
    /// (newer index generation).
    pub fn merge(&self, other: &PostingList) -> PostingList {
        let (a, b) = (self.postings(), other.postings());
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(b[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        PostingList::from_sorted(out)
    }

    /// Remove all postings for the given sorted document ids.
    pub fn without_docs(&self, docs: &[u64]) -> PostingList {
        let filtered: Vec<Posting> = self
            .postings
            .iter()
            .filter(|(d, _)| docs.binary_search(d).is_err())
            .copied()
            .collect();
        PostingList::from_sorted(filtered)
    }
}

/// Sequential cutoff for the parallel intersection.
const INTERSECT_CUTOFF: usize = 4096;

/// Intersect two doc-sorted posting lists, summing weights — the paper's
/// parallel intersection (divide-and-conquer on the larger list, binary
/// search in the smaller).
pub fn intersect(a: &[Posting], b: &[Posting]) -> Vec<(u64, u64)> {
    if a.len() > b.len() {
        return intersect(b, a);
    }
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() + b.len() <= INTERSECT_CUTOFF {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        return out;
    }
    // Split the larger list, partition the smaller by binary search.
    let mid = b.len() / 2;
    let pivot = b[mid].0;
    let split = a.partition_point(|p| p.0 < pivot);
    let (left, right) = rayon::join(
        || intersect(&a[..split], &b[..mid]),
        || intersect(&a[split..], &b[mid..]),
    );
    let mut out = left;
    out.extend(right);
    out
}

/// Tree parameters of the term map: term id → posting list, augmented with
/// the subtree's maximum posting weight.
pub struct IndexParams;

impl TreeParams for IndexParams {
    type K = u64;
    type V = PostingList;
    type Aug = u64;

    fn aug_id() -> u64 {
        0
    }
    fn make_aug(_term: &u64, pl: &PostingList) -> u64 {
        pl.max_weight()
    }
    fn combine(a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }
}

/// A searchable, transactionally-updated inverted index.
pub struct InvertedIndex<M: VersionMaintenance = PswfVm> {
    db: Database<IndexParams, M>,
}

impl InvertedIndex<PswfVm> {
    /// Empty index for `processes` process ids (PSWF version maintenance).
    pub fn new(processes: usize) -> Self {
        InvertedIndex {
            db: Database::new(processes),
        }
    }
}

impl<M: VersionMaintenance> InvertedIndex<M> {
    /// The underlying database (stats, advanced use).
    pub fn database(&self) -> &Database<IndexParams, M> {
        &self.db
    }

    /// Lease a free process id as an [`IndexSession`] — the handle all
    /// ingestion and querying runs through.
    pub fn session(&self) -> Result<IndexSession<'_, M>, SessionError> {
        Ok(IndexSession {
            inner: self.db.session()?,
        })
    }

    /// Lease the specific process id `pid`.
    pub fn session_for(&self, pid: usize) -> Result<IndexSession<'_, M>, SessionError> {
        Ok(IndexSession {
            inner: self.db.session_for(pid)?,
        })
    }
}

/// An exclusive process-id lease on an [`InvertedIndex`]: one writer or
/// query thread's handle. `Send + !Sync`, like the underlying
/// [`Session`].
pub struct IndexSession<'idx, M: VersionMaintenance = PswfVm> {
    inner: Session<'idx, IndexParams, M>,
}

impl<'idx, M: VersionMaintenance> IndexSession<'idx, M> {
    /// The leased process id.
    pub fn pid(&self) -> usize {
        self.inner.pid()
    }

    /// The underlying database session (stats, advanced use).
    pub fn database_session(&mut self) -> &mut Session<'idx, IndexParams, M> {
        &mut self.inner
    }

    /// Add a batch of documents in **one atomic write transaction**.
    /// Each document is `(doc_id, [(term, weight), ...])`. Queries see
    /// either none or all of the batch.
    pub fn add_documents(&mut self, docs: &[(u64, Vec<(u64, u64)>)]) {
        // Build term -> postings for the batch (T' of §7.2).
        let mut by_term: std::collections::BTreeMap<u64, Vec<Posting>> =
            std::collections::BTreeMap::new();
        for (doc, terms) in docs {
            for (term, weight) in terms {
                by_term.entry(*term).or_default().push((*doc, *weight));
            }
        }
        let batch: Vec<(u64, PostingList)> = by_term
            .into_iter()
            .map(|(term, mut postings)| {
                postings.sort_unstable_by_key(|p| p.0);
                postings.dedup_by_key(|p| p.0);
                (term, PostingList::from_sorted(postings))
            })
            .collect();
        // union-with-merge: duplicate terms combine their posting lists
        // (the paper's union "whenever duplicate keys appear, we take a
        // union on their values").
        self.inner
            .write(|txn| txn.multi_insert(batch.clone(), |old, new| old.merge(new)));
    }

    /// Remove a set of documents atomically (posting lists are rewritten;
    /// terms left empty are dropped from the index).
    pub fn remove_documents(&mut self, docs: &[u64]) {
        let mut sorted: Vec<u64> = docs.to_vec();
        sorted.sort_unstable();
        self.inner.write_raw(|f, base| {
            let filtered = f.filter(base, |_term, pl| {
                // Keep terms that still have postings after removal...
                pl.postings()
                    .iter()
                    .any(|(d, _)| sorted.binary_search(d).is_err())
            });
            // ...and rewrite the lists that referenced removed docs.
            let mut rewrites: Vec<(u64, PostingList)> = Vec::new();
            f.for_each(filtered, &mut |term, pl| {
                if pl
                    .postings()
                    .iter()
                    .any(|(d, _)| sorted.binary_search(d).is_ok())
                {
                    rewrites.push((*term, pl.without_docs(&sorted)));
                }
            });
            let t = f.multi_insert(filtered, rewrites, |_old, new| new.clone());
            (t, ())
        });
    }

    /// Number of indexed terms.
    pub fn term_count(&mut self) -> usize {
        self.inner.read(|s| s.len())
    }

    /// The largest posting weight anywhere in `term_lo..=term_hi`
    /// (O(log n) via the augmentation).
    pub fn max_weight_in_range(&mut self, term_lo: u64, term_hi: u64) -> u64 {
        self.inner.read(|s| s.aug_range(&term_lo, &term_hi))
    }

    /// "and"-query (§7.2): top-`k` documents containing both terms, ranked
    /// by combined weight. Runs as one read transaction on a snapshot —
    /// the two posting lists are consistent with each other by
    /// construction.
    pub fn and_query(&mut self, term_a: u64, term_b: u64, k: usize) -> Vec<(u64, u64)> {
        self.inner.read(|s| {
            let (Some(pa), Some(pb)) = (s.get(&term_a), s.get(&term_b)) else {
                return Vec::new();
            };
            let mut hits = intersect(pa.postings(), pb.postings());
            hits.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            hits.truncate(k);
            hits
        })
    }

    /// Posting-list length of a term (0 if absent).
    pub fn doc_frequency(&mut self, term: u64) -> usize {
        self.inner.read(|s| s.get(&term).map_or(0, |pl| pl.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, terms: &[(u64, u64)]) -> (u64, Vec<(u64, u64)>) {
        (id, terms.to_vec())
    }

    #[test]
    fn add_and_query() {
        let idx = InvertedIndex::new(2);
        let mut writer = idx.session().unwrap();
        let mut reader = idx.session().unwrap();
        writer.add_documents(&[
            doc(1, &[(10, 5), (20, 3)]),
            doc(2, &[(10, 7), (30, 1)]),
            doc(3, &[(10, 2), (20, 9)]),
        ]);
        assert_eq!(reader.term_count(), 3);
        assert_eq!(reader.doc_frequency(10), 3);
        // Docs containing both 10 and 20: 1 (5+3=8) and 3 (2+9=11).
        assert_eq!(reader.and_query(10, 20, 10), vec![(3, 11), (1, 8)]);
        assert_eq!(reader.and_query(10, 20, 1), vec![(3, 11)]);
        assert_eq!(reader.and_query(20, 30, 10), vec![]);
        assert_eq!(reader.and_query(99, 10, 10), vec![]);
    }

    #[test]
    fn incremental_batches_merge_posting_lists() {
        let idx = InvertedIndex::new(1);
        let mut s = idx.session().unwrap();
        s.add_documents(&[doc(1, &[(7, 1)])]);
        s.add_documents(&[doc(2, &[(7, 2)])]);
        s.add_documents(&[doc(3, &[(7, 3)])]);
        assert_eq!(s.doc_frequency(7), 3);
        assert_eq!(s.and_query(7, 7, 10).len(), 3);
        assert_eq!(s.max_weight_in_range(0, 100), 3);
    }

    #[test]
    fn batch_is_atomic_under_concurrent_queries() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let idx = std::sync::Arc::new(InvertedIndex::new(3));
        let mut writer = idx.session().unwrap();
        // Every doc contains both terms 1 and 2, so the intersection size
        // must always equal each posting-list length (atomicity witness).
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let idx = idx.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut q = idx.session().unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let df1 = q.doc_frequency(1);
                        let hits = q.and_query(1, 2, usize::MAX);
                        assert!(
                            hits.len() <= df1 || df1 == 0,
                            "query saw a partially-applied batch"
                        );
                    }
                });
            }
            for batch in 0..30u64 {
                let docs: Vec<_> = (0..20)
                    .map(|i| doc(batch * 20 + i, &[(1, i + 1), (2, i + 1)]))
                    .collect();
                writer.add_documents(&docs);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(writer.doc_frequency(1), 600);
        assert_eq!(writer.and_query(1, 2, usize::MAX).len(), 600);
        assert_eq!(idx.database().live_versions(), 1);
    }

    #[test]
    fn remove_documents_rewrites_lists() {
        let idx = InvertedIndex::new(1);
        let mut s = idx.session().unwrap();
        s.add_documents(&[
            doc(1, &[(5, 1), (6, 1)]),
            doc(2, &[(5, 2)]),
            doc(3, &[(6, 3)]),
        ]);
        s.remove_documents(&[1]);
        assert_eq!(s.doc_frequency(5), 1); // doc 2 remains
        assert_eq!(s.doc_frequency(6), 1); // doc 3 remains
        s.remove_documents(&[2, 3]);
        assert_eq!(s.term_count(), 0, "empty terms dropped");
    }

    #[test]
    fn intersect_parallel_matches_sequential() {
        let a: Vec<Posting> = (0..20_000u64).map(|d| (d * 2, d % 100)).collect();
        let b: Vec<Posting> = (0..20_000u64).map(|d| (d * 3, d % 50)).collect();
        let got = intersect(&a, &b);
        // Sequential reference.
        let bm: std::collections::HashMap<u64, u64> = b.iter().copied().collect();
        let want: Vec<(u64, u64)> = a
            .iter()
            .filter_map(|(d, w)| bm.get(d).map(|w2| (*d, w + w2)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn posting_list_merge_and_remove() {
        let a = PostingList::from_sorted(vec![(1, 5), (3, 2), (5, 9)]);
        let b = PostingList::from_sorted(vec![(2, 1), (3, 7)]);
        let m = a.merge(&b);
        assert_eq!(m.postings(), &[(1, 5), (2, 1), (3, 7), (5, 9)]);
        assert_eq!(m.max_weight(), 9);
        let r = m.without_docs(&[3, 5]);
        assert_eq!(r.postings(), &[(1, 5), (2, 1)]);
        assert_eq!(r.max_weight(), 5);
    }
}
