//! Compact node identifiers.
//!
//! Tree links are the dominant space cost of a path-copying structure, so
//! node references are 4-byte indices into the arena rather than 8-byte
//! pointers. [`OptNodeId`] reserves `u32::MAX` as the nil sentinel so an
//! optional link is still 4 bytes (no `Option` tag word).

use core::fmt;

/// Index of an occupied slot in an [`crate::Arena`]. Always refers to a node
/// (never nil).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index value. Stable for the lifetime of the allocation.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a `NodeId` from a raw index previously obtained with
    /// [`NodeId::index`]. The caller must ensure the id is still live.
    #[inline]
    pub fn from_index(raw: u32) -> Self {
        debug_assert_ne!(raw, u32::MAX, "u32::MAX is the nil sentinel");
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An optional [`NodeId`] in 4 bytes: `u32::MAX` encodes nil ("empty tree").
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptNodeId(u32);

impl OptNodeId {
    /// The nil reference (empty subtree / no version data).
    pub const NONE: OptNodeId = OptNodeId(u32::MAX);

    /// Wrap a concrete node id.
    #[inline]
    pub fn some(id: NodeId) -> Self {
        OptNodeId(id.0)
    }

    /// True if this is the nil sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// True if this refers to a node.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != u32::MAX
    }

    /// Convert to a std `Option`.
    #[inline]
    pub fn get(self) -> Option<NodeId> {
        if self.is_none() {
            None
        } else {
            Some(NodeId(self.0))
        }
    }

    /// Unwrap, panicking on nil.
    #[inline]
    #[track_caller]
    pub fn unwrap(self) -> NodeId {
        assert!(self.is_some(), "OptNodeId::unwrap on nil");
        NodeId(self.0)
    }

    /// Raw 4-byte encoding (`u32::MAX` = nil). Round-trips through
    /// [`OptNodeId::from_raw`]. This is what the version-maintenance layer
    /// stores as its `u64` data token.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Decode a raw value produced by [`OptNodeId::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        OptNodeId(raw)
    }
}

impl Default for OptNodeId {
    #[inline]
    fn default() -> Self {
        OptNodeId::NONE
    }
}

impl From<NodeId> for OptNodeId {
    #[inline]
    fn from(id: NodeId) -> Self {
        OptNodeId::some(id)
    }
}

impl From<Option<NodeId>> for OptNodeId {
    #[inline]
    fn from(id: Option<NodeId>) -> Self {
        match id {
            Some(id) => OptNodeId::some(id),
            None => OptNodeId::NONE,
        }
    }
}

impl fmt::Debug for OptNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.get() {
            Some(id) => write!(f, "{id:?}"),
            None => write!(f, "nil"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_roundtrip() {
        let id = NodeId(7);
        let o = OptNodeId::some(id);
        assert!(o.is_some());
        assert_eq!(o.get(), Some(id));
        assert_eq!(o.unwrap(), id);
        assert_eq!(OptNodeId::from_raw(o.raw()), o);
    }

    #[test]
    fn none_is_nil() {
        assert!(OptNodeId::NONE.is_none());
        assert_eq!(OptNodeId::NONE.get(), None);
        assert_eq!(OptNodeId::default(), OptNodeId::NONE);
        assert_eq!(OptNodeId::from_raw(u32::MAX), OptNodeId::NONE);
    }

    #[test]
    fn from_option() {
        assert_eq!(OptNodeId::from(None), OptNodeId::NONE);
        assert_eq!(OptNodeId::from(Some(NodeId(3))).unwrap(), NodeId(3));
    }

    #[test]
    fn sizes_stay_compact() {
        assert_eq!(core::mem::size_of::<NodeId>(), 4);
        assert_eq!(core::mem::size_of::<OptNodeId>(), 4);
    }

    #[test]
    #[should_panic]
    fn unwrap_nil_panics() {
        OptNodeId::NONE.unwrap();
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
        assert_eq!(format!("{:?}", OptNodeId::NONE), "nil");
        assert_eq!(format!("{:?}", OptNodeId::some(NodeId(5))), "n5");
    }
}
