//! A **dynamic non-zero indicator** (SNZI) — the contention-mitigation
//! alternative to fetch-and-add counters that §4 of the paper points to:
//!
//! > "The simplest way of implementing the counters is via a
//! > fetch-and-add object. However, we note that this could introduce
//! > unnecessary contention. To mitigate that effect, other options,
//! > like dynamic non-zero indicators [2], can be used."
//!
//! This is the SNZI tree of Ellen, Lev, Luchangco and Moir (PODC 2007),
//! as used for nested parallelism by Acar, Ben-David and Rainey [2]: a
//! complete binary tree of counters where each process arrives and
//! departs at its own leaf, and an increment propagates toward the root
//! **only on a 0 → nonzero transition** of its node (symmetrically for
//! decrements on nonzero → 0). Under the single-writer workload's
//! pattern — many processes repeatedly arriving/departing — almost all
//! traffic stays on per-process leaves, and the root (the only word a
//! `query` reads) is touched O(1) amortized times instead of once per
//! operation.
//!
//! Each internal node's state is a packed `(count, version)` word, with
//! the count in **half units**: the intermediate value ½ marks a node
//! whose 0 → nonzero transition is mid-flight (its owner has yet to
//! finish arriving at the parent), letting helpers merge into the same
//! transition instead of contending on it.
//!
//! # Guarantees
//!
//! * If some process has completed an [`Snzi::arrive`] and not yet begun
//!   the matching [`Snzi::depart`], then [`Snzi::query`] returns `true`.
//! * After every arrive has been matched by a completed depart (and no
//!   operation is in flight), `query` returns `false`.
//!
//! (The original paper additionally makes `query` linearizable with
//! in-flight arrives via an indicator/announce bit on the root; the
//! reference-counting use case only needs the two properties above, so
//! the root here is a plain counter.)

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// Memory-ordering roles — a local mirror of `mvcc-vm::ordering`'s
// vocabulary (this crate sits below `mvcc-vm` in the dependency graph,
// so the constants are restated rather than imported; the `strict-sc`
// feature maps the tunable ones back to `SeqCst` just the same).
// ---------------------------------------------------------------------

/// Tunable (`AcqRel`; `SeqCst` under `strict-sc`) — every interior-node
/// CAS. The RMW chain on each node totally orders that node's
/// transitions and extends predecessors' release sequences, so a
/// completed arrive's propagation to the root happens-before any
/// operation that synchronizes with the arriver — the edge the
/// `Guarantees` section needs. (On x86 this is the same locked
/// instruction as `SeqCst`; ARM drops the trailing barrier.)
const NODE_CAS: Ordering = if cfg!(feature = "strict-sc") {
    Ordering::SeqCst
} else {
    Ordering::AcqRel
};

/// Tunable (`Relaxed`; `SeqCst` under `strict-sc`) — the per-iteration
/// node re-read feeding a CAS expected value. A stale read is corrected
/// by the CAS failing (the version field catches stale `HALF`
/// promotions); no decision survives without revalidation.
const NODE_HINT: Ordering = if cfg!(feature = "strict-sc") {
    Ordering::SeqCst
} else {
    Ordering::Relaxed
};

/// **Pinned `SeqCst`** — the root counter's RMWs and [`Snzi::query`]'s
/// load. Proof obligation: the module's first guarantee is *temporal*
/// ("if some process has completed an arrive..."), promised to queriers
/// with no happens-before relationship to the arriver; only the SC
/// total order makes a completed root increment visible to every later
/// query. Root RMWs are locked instructions on x86 either way, and the
/// query is a plain `mov`, so pinning costs nothing there.
const ROOT_RMW: Ordering = Ordering::SeqCst;
/// See [`ROOT_RMW`].
const QUERY: Ordering = Ordering::SeqCst;

/// Count of one whole arrival, in half units.
const ONE: u64 = 2;
/// The intermediate "half" count marking an in-flight 0→nonzero move.
const HALF: u64 = 1;

#[inline]
fn pack(c: u64, v: u32) -> u64 {
    (c << 32) | v as u64
}

#[inline]
fn count_of(x: u64) -> u64 {
    x >> 32
}

#[inline]
fn ver_of(x: u64) -> u32 {
    x as u32
}

/// A scalable non-zero indicator over `leaves` process slots.
pub struct Snzi {
    /// Implicit complete binary tree: `nodes[0]` is the root, the
    /// children of `i` are `2i+1` and `2i+2`.
    nodes: Box<[CachePadded<AtomicU64>]>,
    /// Index of the first leaf node.
    leaf_base: usize,
    leaves: usize,
}

impl Snzi {
    /// An indicator with one leaf per process slot.
    pub fn new(leaves: usize) -> Self {
        assert!(leaves >= 1);
        let width = leaves.next_power_of_two();
        let total = 2 * width - 1;
        Snzi {
            nodes: (0..total)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            leaf_base: width - 1,
            leaves,
        }
    }

    /// Number of leaf slots.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Record one arrival at `leaf`. Must be matched by exactly one
    /// [`Snzi::depart`] on the same leaf (by any thread).
    pub fn arrive(&self, leaf: usize) {
        assert!(leaf < self.leaves);
        self.arrive_at(self.leaf_base + leaf);
    }

    /// Record one departure at `leaf`, matching an earlier arrival.
    pub fn depart(&self, leaf: usize) {
        assert!(leaf < self.leaves);
        self.depart_at(self.leaf_base + leaf);
    }

    /// `true` iff the surplus (arrives minus departs) is provably
    /// non-zero. A single uncontended root-word read.
    pub fn query(&self) -> bool {
        count_of(self.nodes[0].load(QUERY)) > 0
    }

    fn arrive_at(&self, idx: usize) {
        if idx == 0 {
            // Root: a plain counter; only 0↔nonzero transitions of its
            // children ever reach here.
            self.nodes[0].fetch_add(pack(ONE, 0), ROOT_RMW);
            return;
        }
        let parent = (idx - 1) / 2;
        let node = &self.nodes[idx];
        // The PODC'07 Arrive, verbatim: one load per iteration, then the
        // three (non-exclusive) cases. Only the ≥1 add and the 0→½ claim
        // complete *our* arrival; the ½→1 promotion finishes the
        // *claimer's* transition, and a helper whose promotion loses
        // withdraws its donated parent-arrival afterwards.
        let mut succ = false;
        let mut undo = 0u32;
        while !succ {
            let mut x = node.load(NODE_HINT);
            if count_of(x) >= ONE {
                // Node already visibly non-zero: just add our unit.
                if node
                    .compare_exchange(x, pack(count_of(x) + ONE, ver_of(x)), NODE_CAS, NODE_HINT)
                    .is_ok()
                {
                    succ = true;
                }
            }
            if count_of(x) == 0 {
                // Claim the 0→nonzero transition with the HALF marker and
                // a fresh version so a stale ½→1 CAS can never land.
                let claimed = pack(HALF, ver_of(x).wrapping_add(1));
                if node
                    .compare_exchange(x, claimed, NODE_CAS, NODE_HINT)
                    .is_ok()
                {
                    succ = true;
                    x = claimed;
                }
            }
            if count_of(x) == HALF {
                // Complete the transition: surplus must reach the parent
                // *before* the node reads as whole (NODE_CAS release
                // publishes the parent arrival with the promotion).
                self.arrive_at(parent);
                if node
                    .compare_exchange(x, pack(ONE, ver_of(x)), NODE_CAS, NODE_HINT)
                    .is_err()
                {
                    undo += 1;
                }
            }
        }
        for _ in 0..undo {
            self.depart_at(parent);
        }
    }

    fn depart_at(&self, idx: usize) {
        if idx == 0 {
            let prev = self.nodes[0].fetch_sub(pack(ONE, 0), ROOT_RMW);
            debug_assert!(count_of(prev) >= ONE, "root departed below zero");
            return;
        }
        let parent = (idx - 1) / 2;
        let node = &self.nodes[idx];
        loop {
            let x = node.load(NODE_HINT);
            let (c, v) = (count_of(x), ver_of(x));
            debug_assert!(c >= ONE, "depart without a completed arrive");
            if node
                .compare_exchange(x, pack(c - ONE, v), NODE_CAS, NODE_HINT)
                .is_ok()
            {
                if c == ONE {
                    // nonzero → 0: withdraw this subtree's surplus.
                    self.depart_at(parent);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_leaf_arrive_depart() {
        let s = Snzi::new(1);
        assert!(!s.query());
        s.arrive(0);
        assert!(s.query());
        s.depart(0);
        assert!(!s.query());
    }

    #[test]
    fn nested_arrivals_one_leaf() {
        let s = Snzi::new(4);
        for _ in 0..10 {
            s.arrive(2);
        }
        assert!(s.query());
        for i in 0..10 {
            assert!(s.query(), "still held after {i} departs");
            s.depart(2);
        }
        assert!(!s.query());
    }

    #[test]
    fn different_leaves_independent() {
        let s = Snzi::new(8);
        s.arrive(0);
        s.arrive(7);
        s.depart(0);
        assert!(s.query(), "leaf 7 still arrived");
        s.depart(7);
        assert!(!s.query());
    }

    #[test]
    fn depart_on_other_leaf_than_arrive_thread() {
        // The refcount use case hands ownership across threads: arrive on
        // the writer's leaf, depart from a releaser's context (same leaf
        // index, different thread).
        let s = Arc::new(Snzi::new(2));
        s.arrive(1);
        let s2 = Arc::clone(&s);
        std::thread::spawn(move || s2.depart(1)).join().unwrap();
        assert!(!s.query());
    }

    #[test]
    fn non_power_of_two_leaves() {
        let s = Snzi::new(5);
        for leaf in 0..5 {
            s.arrive(leaf);
        }
        for leaf in 0..5 {
            assert!(s.query());
            s.depart(leaf);
        }
        assert!(!s.query());
    }

    #[test]
    fn concurrent_hammer_never_false_while_held() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 2_000;
        let s = Arc::new(Snzi::new(THREADS));
        std::thread::scope(|scope| {
            for leaf in 0..THREADS {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        s.arrive(leaf);
                        // While *we* hold an arrival, the indicator must
                        // be non-zero no matter what everyone else does.
                        assert!(s.query(), "query false while leaf {leaf} held");
                        s.depart(leaf);
                    }
                });
            }
        });
        assert!(!s.query(), "surplus after all departs");
    }

    #[test]
    fn concurrent_shared_leaf() {
        // All threads hammer the SAME leaf — maximal contention on one
        // node; correctness must still hold.
        const THREADS: usize = 8;
        const ROUNDS: usize = 2_000;
        let s = Arc::new(Snzi::new(1));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        s.arrive(0);
                        assert!(s.query());
                        s.depart(0);
                    }
                });
            }
        });
        assert!(!s.query());
    }

    #[test]
    fn staggered_holders_quiesce_to_zero() {
        const THREADS: usize = 6;
        let s = Arc::new(Snzi::new(THREADS));
        std::thread::scope(|scope| {
            for leaf in 0..THREADS {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for round in 0..500usize {
                        s.arrive(leaf);
                        if round % (leaf + 1) == 0 {
                            std::thread::yield_now();
                        }
                        s.depart(leaf);
                    }
                });
            }
        });
        assert!(!s.query());
    }
}
