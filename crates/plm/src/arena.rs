//! Sharded lock-free chunked slab with atomic reference counts.
//!
//! ## Slot storage
//!
//! Slots live in up to [`NUM_CHUNKS`] chunks whose sizes double (`BASE`,
//! `2*BASE`, `4*BASE`, …). Chunks are installed lazily with a single CAS
//! and are never moved or freed until the arena drops, so a `&T` handed
//! out by [`Arena::get`] stays valid storage for the arena's lifetime
//! regardless of concurrent allocation. A [`NodeId`] is a stable 4-byte
//! index into this (global, shard-agnostic) id space.
//!
//! ## Sharded allocation
//!
//! Every transactional write path-copies O(log n) tree nodes and precise
//! GC frees them one by one, so allocator throughput bounds system
//! throughput. A single freelist head serializes every thread in the
//! process on one cache line; this arena therefore splits the allocator
//! into `S` independent **shards** (a power of two, default ≈ 2× the
//! core count), each with
//!
//! * its own tagged Treiber freelist head (the tag defeats ABA), and
//! * its own **fresh window** — a block of never-used ids carved from
//!   the global bump cursor [`FRESH_BLOCK`] ids at a time, so the global
//!   cursor is touched once per block instead of once per allocation.
//!
//! An allocation site picks a shard through an [`AllocCtx`]:
//! thread-affine by default (each thread is assigned a shard round-robin
//! on first use), or pinned explicitly — [`Arena::pin`] installs a
//! thread-local override so a whole batch (e.g. the flat-combining
//! writer, or a bulk tree operation) allocates and frees through one
//! shard without threading a parameter through every recursive call.
//! Allocation order per shard: own freelist → own fresh window → steal
//! a recycled slot from a sibling shard → carve a new fresh block. Slots
//! may migrate between shards over their lifetime (freed into whichever
//! shard collected them); ids, generations and metadata are global so
//! this is invisible to readers.
//!
//! [`Arena::collect`] additionally *buffers* frees: freed slots are
//! linked into a private chain and spliced onto the shard freelist with
//! one CAS per [`FREE_BUF`] tuples, so collecting a large version does
//! not CAS a shared head once per tuple.
//!
//! ## Per-slot metadata
//!
//! Packs into one `AtomicU64` (unchanged by sharding — `NodeId`
//! stability and the precise-GC accounting hold exactly as before):
//!
//! ```text
//! bit 63      : OCCUPIED
//! bits 32..63 : generation (bumped on every free; detects stale ids)
//! bits  0..32 : reference count (occupied) | next free index (free)
//! ```
//!
//! Reference-count updates are single `fetch_add`/`fetch_sub`
//! instructions on the metadata word — they can never carry into the
//! generation field because the owner invariant guarantees
//! `1 <= rc < 2^32` whenever an increment or decrement happens.

use core::sync::atomic::{fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;

use crossbeam::utils::CachePadded;

use crate::{NodeId, OptNodeId, Tuple};

/// log2 of the first chunk's slot count.
const BASE_BITS: u32 = 10;
/// Slot count of chunk 0.
const BASE: u32 = 1 << BASE_BITS;
/// Maximum number of chunks; capacity is `BASE * (2^NUM_CHUNKS - 1)` slots,
/// which exhausts the 32-bit id space.
const NUM_CHUNKS: usize = 22;

const OCCUPIED: u64 = 1 << 63;
const GEN_SHIFT: u32 = 32;
const GEN_MASK: u64 = ((1u64 << 31) - 1) << GEN_SHIFT;
const LOW_MASK: u64 = (1u64 << 32) - 1;

/// Freelist "empty" marker (also used as a slot's "no next" link).
const NIL: u32 = u32::MAX;

/// Ids carved from the global fresh cursor per shard refill. Must divide
/// `BASE` so a block never straddles a chunk boundary (chunk starts are
/// multiples of `BASE`), letting the refill install the chunk once.
const FRESH_BLOCK: u64 = 256;
const _: () = assert!((BASE as u64).is_multiple_of(FRESH_BLOCK));

/// Upper bound on the shard count (id space and stats stay tiny).
const MAX_SHARDS: usize = 64;

/// Buffered frees per freelist splice in [`Arena::collect`].
const FREE_BUF: usize = 64;

#[inline]
fn locate(index: u32) -> (usize, usize) {
    // Chunk c covers indices [BASE*(2^c - 1), BASE*(2^(c+1) - 1)).
    let adjusted = (index as u64 + BASE as u64) >> BASE_BITS; // >= 1
    let chunk = 63 - adjusted.leading_zeros() as u64;
    let chunk_start = ((1u64 << chunk) - 1) << BASE_BITS;
    (chunk as usize, (index as u64 - chunk_start) as usize)
}

#[inline]
fn chunk_len(chunk: usize) -> usize {
    (BASE as usize) << chunk
}

struct Slot<T> {
    meta: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            meta: AtomicU64::new(0),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// One allocator shard. The whole struct is cache-padded where it is
/// stored so shards never false-share.
struct Shard {
    /// Tagged Treiber head: `(tag << 32) | index`.
    free_head: AtomicU64,
    /// Fresh window `(end << 32) | cursor`: ids `[cursor, end)` are
    /// reserved for this shard and have never been used.
    fresh: AtomicU64,
    /// Serializes window refills (rare: once per [`FRESH_BLOCK`] fresh
    /// allocations) so a lost install race cannot leak a carved block.
    refill_lock: AtomicBool,
    allocated: AtomicU64,
    freed: AtomicU64,
    /// May transiently dip negative when frees land on a different shard
    /// than the matching allocs.
    live: AtomicI64,
    peak_live: AtomicI64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            free_head: AtomicU64::new(NIL as u64),
            fresh: AtomicU64::new(0), // cursor == end == 0: empty
            refill_lock: AtomicBool::new(false),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            live: AtomicI64::new(0),
            peak_live: AtomicI64::new(0),
        }
    }
}

/// A shard selection for allocation and collection — cheap to copy,
/// valid for any arena (the index is taken modulo the shard count).
///
/// Obtain one with [`Arena::ctx`] (thread-affine), [`Arena::ctx_for`]
/// (deterministic, e.g. per producer id), and apply it either per call
/// ([`Arena::alloc_in`], [`Arena::collect_in`]) or scoped over a whole
/// batch with [`Arena::pin`] / [`Arena::with_ctx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCtx {
    shard: u32,
}

impl AllocCtx {
    /// The raw shard index this context routes to (diagnostics).
    pub fn shard_index(self) -> usize {
        self.shard as usize
    }
}

/// Round-robin source for thread-affine shard assignment.
static NEXT_THREAD_SEED: AtomicU32 = AtomicU32::new(0);

const NO_PIN: u32 = u32::MAX;

/// Keep a raw round-robin counter value out of the `NO_PIN` sentinel
/// while preserving consecutiveness (so consecutive threads land on
/// consecutive shards under any power-of-two mask).
#[inline]
fn sanitize_seed(raw: u32) -> u32 {
    raw % NO_PIN
}

/// This thread's affine shard seed, assigned round-robin on first use.
#[inline]
fn affine_seed() -> u32 {
    THREAD_SEED.with(|s| {
        let mut v = s.get();
        if v == NO_PIN {
            v = sanitize_seed(NEXT_THREAD_SEED.fetch_add(1, Ordering::Relaxed));
            s.set(v);
        }
        v
    })
}

thread_local! {
    /// This thread's affine shard seed (assigned on first allocation).
    static THREAD_SEED: Cell<u32> = const { Cell::new(NO_PIN) };
    /// Explicit override installed by [`Arena::pin`]: `(arena key,
    /// seed)`. Keyed per arena so pinning one arena never reroutes a
    /// different arena the same thread touches inside the scope.
    static PINNED_SEED: Cell<(usize, u32)> = const { Cell::new((0, NO_PIN)) };
}

/// RAII guard for [`Arena::pin`]: restores the previous pin (if any) on
/// drop. Not `Send` — the pin is a property of the current thread. The
/// borrow keeps the pinned arena alive (its identity keys the pin).
pub struct PinGuard<'a> {
    prev: (usize, u32),
    _arena: std::marker::PhantomData<&'a ()>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        PINNED_SEED.with(|p| p.set(self.prev));
    }
}

/// Point-in-time allocation statistics (see [`Arena::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total number of `alloc` calls ever performed.
    pub allocated_total: u64,
    /// Total number of slots freed by `collect`.
    pub freed_total: u64,
    /// Currently allocated (not yet freed) slots.
    pub live: u64,
    /// Sum of the per-shard high-water marks of `allocs − frees` as
    /// observed by each shard. Exact when each shard's frees balance its
    /// allocs (the affine/pinned pattern, and any single-threaded use);
    /// when frees deliberately migrate to other shards the alloc-side
    /// shards' marks never come down, so this inflates toward
    /// `allocated_total` and is only a (possibly vacuous) upper bound.
    pub peak_live: u64,
    /// Number of allocator shards.
    pub shards: u64,
}

/// A concurrent slab of reference-counted tuples — the PLM memory of the
/// paper. See the crate docs for the ownership convention and the module
/// docs for the sharded allocator layout.
pub struct Arena<T: Tuple> {
    chunks: [AtomicU64; NUM_CHUNKS], // raw `*mut Slot<T>` stored as u64
    shards: Box<[CachePadded<Shard>]>,
    shard_mask: u32,
    /// Global bump cursor; carved [`FRESH_BLOCK`] ids at a time.
    next_fresh: CachePadded<AtomicU64>,
    _marker: std::marker::PhantomData<T>,
}

unsafe impl<T: Tuple> Send for Arena<T> {}
unsafe impl<T: Tuple> Sync for Arena<T> {}

impl<T: Tuple> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (2 * cores).next_power_of_two().clamp(1, MAX_SHARDS)
}

impl<T: Tuple> Arena<T> {
    /// Create an empty arena with the default shard count (≈ 2× cores,
    /// rounded to a power of two). No chunks are allocated until first
    /// use.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Create an empty arena with an explicit shard count (rounded up to
    /// a power of two, clamped to `1..=64`). `with_shards(1)` reproduces
    /// the classic single-freelist allocator, which benchmarks use as
    /// their contention baseline.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.next_power_of_two().clamp(1, MAX_SHARDS);
        Arena {
            chunks: std::array::from_fn(|_| AtomicU64::new(0)),
            shards: (0..shards)
                .map(|_| CachePadded::new(Shard::new()))
                .collect(),
            shard_mask: shards as u32 - 1,
            next_fresh: CachePadded::new(AtomicU64::new(0)),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of allocator shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of slots this arena can ever hold.
    pub const fn capacity() -> u64 {
        (BASE as u64) * ((1u64 << NUM_CHUNKS) - 1)
    }

    // ------------------------------------------------------------------
    // Allocation contexts
    // ------------------------------------------------------------------

    /// The calling thread's allocation context: the pinned shard if a
    /// [`Arena::pin`] guard is live, otherwise the thread's affine shard
    /// (assigned round-robin on first use).
    pub fn ctx(&self) -> AllocCtx {
        let (pin_key, pinned) = PINNED_SEED.with(|p| p.get());
        let seed = if pinned != NO_PIN && pin_key == self.pin_key() {
            pinned
        } else {
            affine_seed()
        };
        AllocCtx {
            shard: seed & self.shard_mask,
        }
    }

    /// The calling thread's **affine** context, deliberately bypassing
    /// any live [`Arena::pin`] — the cheap per-*task* shard acquisition
    /// for fork-join code (one thread-local read after first use).
    ///
    /// A work-stealing runtime (`rayon::join`) may run a forked closure
    /// on any pool thread, or inline on a thread that is *helping* while
    /// it waits and still has an unrelated batch pin installed. Either
    /// way the right shard for the subtask is the executing thread's own
    /// one — inheriting the forker's pin would funnel every parallel
    /// subtask onto a single freelist (re-serializing the allocator), and
    /// inheriting a helper's pin would route an unrelated computation
    /// through a batch's shard. Parallel subtasks therefore re-pin with
    /// `with_ctx(task_ctx(), ...)` at each fork; pins keep their batching
    /// role for the sequential regime below the fork cutoff.
    pub fn task_ctx(&self) -> AllocCtx {
        AllocCtx {
            shard: affine_seed() & self.shard_mask,
        }
    }

    /// A deterministic context: `seed` is mapped onto a shard. Useful to
    /// give each producer/process id its own shard regardless of which
    /// thread runs it.
    pub fn ctx_for(&self, seed: usize) -> AllocCtx {
        AllocCtx {
            shard: (seed as u32) & self.shard_mask,
        }
    }

    /// The thread-local pin key identifying *this* arena: pins are
    /// per-arena, so a pinned batch on one arena leaves every other
    /// arena's shard routing untouched.
    #[inline]
    fn pin_key(&self) -> usize {
        self as *const Self as usize
    }

    /// Pin the calling thread to `ctx`'s shard **for this arena** until
    /// the returned guard drops. Every `alloc`/`collect` on this thread
    /// (from any call depth — no parameter threading) routes through
    /// that shard, which is how a batch writer keeps a whole batch on
    /// one freelist. Other arenas touched inside the scope keep their
    /// own affinity. Only the innermost live pin is honoured (they
    /// restore stack-wise), so nest pins for different arenas rather
    /// than interleaving them.
    pub fn pin(&self, ctx: AllocCtx) -> PinGuard<'_> {
        let prev = PINNED_SEED.with(|p| p.replace((self.pin_key(), ctx.shard)));
        PinGuard {
            prev,
            _arena: std::marker::PhantomData,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Run `f` with the thread pinned to `ctx`'s shard.
    pub fn with_ctx<R>(&self, ctx: AllocCtx, f: impl FnOnce() -> R) -> R {
        let _guard = self.pin(ctx);
        f()
    }

    #[inline]
    fn shard(&self, ctx: AllocCtx) -> &Shard {
        &self.shards[(ctx.shard & self.shard_mask) as usize]
    }

    // ------------------------------------------------------------------
    // Chunk management
    // ------------------------------------------------------------------

    #[inline]
    fn chunk_ptr(&self, chunk: usize) -> *mut Slot<T> {
        self.chunks[chunk].load(Ordering::Acquire) as *mut Slot<T>
    }

    /// Get (or lazily install) chunk `chunk`.
    fn ensure_chunk(&self, chunk: usize) -> *mut Slot<T> {
        let existing = self.chunk_ptr(chunk);
        if !existing.is_null() {
            return existing;
        }
        // Build a fresh chunk. Slots are zeroed metadata + uninit values.
        let len = chunk_len(chunk);
        let mut v: Vec<Slot<T>> = Vec::with_capacity(len);
        v.resize_with(len, Slot::new);
        let boxed: Box<[Slot<T>]> = v.into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut Slot<T>;
        match self.chunks[chunk].compare_exchange(
            0,
            ptr as u64,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => ptr,
            Err(winner) => {
                // Lost the install race; drop ours (values are uninit, so
                // rebuilding the box only frees the raw slot storage).
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
                }
                winner as *mut Slot<T>
            }
        }
    }

    #[inline]
    fn slot(&self, id: NodeId) -> &Slot<T> {
        let (chunk, offset) = locate(id.0);
        let ptr = self.chunk_ptr(chunk);
        debug_assert!(!ptr.is_null(), "slot in uninstalled chunk: {id:?}");
        unsafe { &*ptr.add(offset) }
    }

    // ------------------------------------------------------------------
    // Per-shard freelist + fresh window
    // ------------------------------------------------------------------

    fn pop_free(&self, shard: &Shard) -> Option<NodeId> {
        loop {
            let head = shard.free_head.load(Ordering::Acquire);
            let idx = (head & LOW_MASK) as u32;
            if idx == NIL {
                return None;
            }
            let tag = head >> 32;
            let next = self.slot(NodeId(idx)).meta.load(Ordering::Acquire) & LOW_MASK;
            let new_head = ((tag + 1) << 32) | next;
            if shard
                .free_head
                .compare_exchange_weak(head, new_head, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(NodeId(idx));
            }
        }
    }

    /// Splice a privately linked chain of freed slots onto the shard
    /// freelist with a single CAS. `entries` are `(index, bumped
    /// generation)` pairs; none of them is reachable by any other thread
    /// until the CAS publishes the first one.
    fn push_free_chain(&self, shard: &Shard, entries: &[(u32, u64)]) {
        debug_assert!(!entries.is_empty());
        for w in entries.windows(2) {
            let (idx, gen) = w[0];
            self.slot(NodeId(idx))
                .meta
                .store((gen << GEN_SHIFT) | w[1].0 as u64, Ordering::Release);
        }
        let (first, _) = entries[0];
        let (last, last_gen) = entries[entries.len() - 1];
        let last_slot = self.slot(NodeId(last));
        loop {
            let head = shard.free_head.load(Ordering::Acquire);
            let tag = head >> 32;
            last_slot.meta.store(
                (last_gen << GEN_SHIFT) | (head & LOW_MASK),
                Ordering::Release,
            );
            let new_head = ((tag + 1) << 32) | first as u64;
            if shard
                .free_head
                .compare_exchange_weak(head, new_head, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Take one id from the shard's fresh window, if non-empty.
    fn pop_fresh(&self, shard: &Shard) -> Option<NodeId> {
        let mut cur = shard.fresh.load(Ordering::Acquire);
        loop {
            let cursor = cur & LOW_MASK;
            let end = cur >> 32;
            if cursor >= end {
                return None;
            }
            match shard.fresh.compare_exchange_weak(
                cur,
                (end << 32) | (cursor + 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(NodeId(cursor as u32)),
                Err(now) => cur = now,
            }
        }
    }

    /// Steal a recycled slot from any sibling shard's freelist.
    fn steal(&self, ctx: AllocCtx) -> Option<NodeId> {
        let own = (ctx.shard & self.shard_mask) as usize;
        let n = self.shards.len();
        for i in 1..n {
            let sibling = &self.shards[(own + i) & self.shard_mask as usize];
            if let Some(id) = self.pop_free(sibling) {
                return Some(id);
            }
        }
        None
    }

    /// Carve a new fresh block from the global cursor into the shard's
    /// window and return its first id. The per-shard refill lock makes
    /// the carve-and-install atomic so a lost race cannot leak a block;
    /// refills happen once per `FRESH_BLOCK` fresh allocations.
    fn refill_fresh(&self, shard: &Shard) -> NodeId {
        loop {
            if let Some(id) = self.pop_fresh(shard) {
                return id;
            }
            if shard
                .refill_lock
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // Re-check: a refill may have landed while we raced.
                if let Some(id) = self.pop_fresh(shard) {
                    shard.refill_lock.store(false, Ordering::Release);
                    return id;
                }
                let start = self.next_fresh.fetch_add(FRESH_BLOCK, Ordering::Relaxed);
                assert!(start < Self::capacity(), "arena capacity exhausted");
                let end = (start + FRESH_BLOCK).min(Self::capacity());
                // A block never straddles a chunk boundary (FRESH_BLOCK
                // divides BASE), so installing the first id's chunk
                // covers the whole window.
                let (chunk, _) = locate(start as u32);
                self.ensure_chunk(chunk);
                // Poppers only CAS a non-empty window, so a plain store
                // cannot clobber a concurrent hand-out.
                shard
                    .fresh
                    .store((end << 32) | (start + 1), Ordering::Release);
                shard.refill_lock.store(false, Ordering::Release);
                return NodeId(start as u32);
            }
            std::hint::spin_loop();
        }
    }

    // ------------------------------------------------------------------
    // Alloc / read / refcount
    // ------------------------------------------------------------------

    /// Allocate a tuple with reference count 1 (owned by the caller),
    /// through the calling thread's context (see [`Arena::ctx`]).
    ///
    /// Ownership convention: any `NodeId` children inside `value` are
    /// *transferred* to the new tuple — the caller gives up its owned
    /// reference to each child and must **not** `collect` them. To keep an
    /// independent reference to a child, call [`Arena::inc`] first.
    pub fn alloc(&self, value: T) -> NodeId {
        self.alloc_in(self.ctx(), value)
    }

    /// [`Arena::alloc`] through an explicit shard context.
    pub fn alloc_in(&self, ctx: AllocCtx, value: T) -> NodeId {
        let shard = self.shard(ctx);
        let id = match self.pop_free(shard) {
            Some(id) => id,
            None => match self.pop_fresh(shard) {
                Some(id) => id,
                None => match self.steal(ctx) {
                    Some(id) => id,
                    None => self.refill_fresh(shard),
                },
            },
        };
        let slot = self.slot(id);
        let gen = (slot.meta.load(Ordering::Acquire) & GEN_MASK) >> GEN_SHIFT;
        unsafe {
            (*slot.value.get()).write(value);
        }
        // Publish: value write happens-before any Acquire load of the meta.
        slot.meta
            .store(OCCUPIED | (gen << GEN_SHIFT) | 1, Ordering::Release);
        shard.allocated.fetch_add(1, Ordering::Relaxed);
        let live = shard.live.fetch_add(1, Ordering::Relaxed) + 1;
        shard.peak_live.fetch_max(live, Ordering::Relaxed);
        id
    }

    /// Read a tuple. Panics if the slot has been freed and not reused (a
    /// deterministic catch for dangling ids); see the crate-level safety
    /// contract for the reuse caveat.
    #[inline]
    pub fn get(&self, id: NodeId) -> &T {
        let slot = self.slot(id);
        let meta = slot.meta.load(Ordering::Acquire);
        assert!(meta & OCCUPIED != 0, "access to freed slot {id:?}");
        unsafe { (*slot.value.get()).assume_init_ref() }
    }

    /// Read a tuple without the occupancy check.
    ///
    /// # Safety
    /// The caller must guarantee the slot is occupied, i.e. it holds (or a
    /// live version transitively holds) an owned reference to `id`.
    #[inline]
    pub unsafe fn get_unchecked(&self, id: NodeId) -> &T {
        let slot = self.slot(id);
        unsafe { (*slot.value.get()).assume_init_ref() }
    }

    /// Mutably access a tuple in place.
    ///
    /// # Safety
    /// The caller must own the *only* reference (`rc == 1` and the caller
    /// owns it), so no concurrent reader can observe the node — this is the
    /// PAM-style in-place-update fast path used by `mvcc-ftree` during
    /// write transactions.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut_unchecked(&self, id: NodeId) -> &mut T {
        let slot = self.slot(id);
        debug_assert_eq!(self.rc(id), 1, "in-place mutation of shared node");
        unsafe { (*slot.value.get()).assume_init_mut() }
    }

    /// Current reference count of an occupied slot (diagnostics/tests).
    #[inline]
    pub fn rc(&self, id: NodeId) -> u32 {
        let meta = self.slot(id).meta.load(Ordering::Acquire);
        debug_assert!(meta & OCCUPIED != 0, "rc of freed slot {id:?}");
        (meta & LOW_MASK) as u32
    }

    /// Whether the slot is currently occupied.
    #[inline]
    pub fn is_occupied(&self, id: NodeId) -> bool {
        self.slot(id).meta.load(Ordering::Acquire) & OCCUPIED != 0
    }

    /// The slot's current generation tag (bumped on every free). Lets
    /// tests and audits prove that a reused id is distinguishable from
    /// its previous incarnation.
    #[inline]
    pub fn generation(&self, id: NodeId) -> u32 {
        ((self.slot(id).meta.load(Ordering::Acquire) & GEN_MASK) >> GEN_SHIFT) as u32
    }

    /// Add one owner to `id` (sharing a child between two parents, or
    /// retaining a version root). Mirrors `Arc::clone`'s relaxed increment:
    /// the caller already owns a reference, so the node cannot be freed
    /// concurrently.
    #[inline]
    pub fn inc(&self, id: NodeId) {
        let old = self.slot(id).meta.fetch_add(1, Ordering::Relaxed);
        debug_assert!(old & OCCUPIED != 0, "inc of freed slot {id:?}");
        debug_assert!(old & LOW_MASK >= 1, "inc resurrecting dead slot {id:?}");
    }

    /// Convenience: `inc` on a non-nil optional id.
    #[inline]
    pub fn inc_opt(&self, id: OptNodeId) {
        if let Some(id) = id.get() {
            self.inc(id);
        }
    }

    // ------------------------------------------------------------------
    // Collection
    // ------------------------------------------------------------------

    /// Algorithm 5, iteratively: release one owned reference to `root`;
    /// if that was the last owner, free the tuple and collect its children.
    /// Returns the number of tuples freed (the `S` of Theorem 4.2 — total
    /// work is `O(S + 1)`). Freed slots go to the calling thread's shard.
    pub fn collect(&self, root: NodeId) -> usize {
        self.collect_in(self.ctx(), root)
    }

    /// [`Arena::collect`] through an explicit shard context. Frees are
    /// buffered and spliced onto the shard freelist `FREE_BUF` at a
    /// time, so a large precise collection performs `O(S / FREE_BUF)`
    /// head CASes instead of `O(S)`.
    pub fn collect_in(&self, ctx: AllocCtx, root: NodeId) -> usize {
        let shard = self.shard(ctx);
        let mut freed = 0usize;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut buf: Vec<(u32, u64)> = Vec::with_capacity(FREE_BUF);
        let mut cur = Some(root);
        while let Some(id) = cur.take().or_else(|| stack.pop()) {
            let slot = self.slot(id);
            let old = slot.meta.fetch_sub(1, Ordering::Release);
            debug_assert!(old & OCCUPIED != 0, "collect of freed slot {id:?}");
            debug_assert!(old & LOW_MASK >= 1, "rc underflow at {id:?}");
            if old & LOW_MASK == 1 {
                // Last owner: synchronize with all prior decrements, then
                // free. (Same fence protocol as `Arc::drop`.)
                fence(Ordering::Acquire);
                let gen = ((old & GEN_MASK) >> GEN_SHIFT).wrapping_add(1) & (GEN_MASK >> GEN_SHIFT);
                // Clear OCCUPIED (with the bumped generation) *before*
                // running the destructor: if `drop` panics and unwinds
                // past the buffered flush below, the slot — and any
                // buffered predecessors — read as free, so `Arena::drop`
                // cannot double-drop them (they leak off-freelist, which
                // is safe). No other thread can observe this store: the
                // slot is off every freelist and rc has reached zero.
                slot.meta
                    .store((gen << GEN_SHIFT) | NIL as u64, Ordering::Relaxed);
                unsafe {
                    let value = (*slot.value.get()).assume_init_mut();
                    value.for_each_child(&mut |child| stack.push(child));
                    std::ptr::drop_in_place(value as *mut T);
                }
                buf.push((id.0, gen));
                if buf.len() == FREE_BUF {
                    self.push_free_chain(shard, &buf);
                    buf.clear();
                }
                freed += 1;
            }
        }
        if !buf.is_empty() {
            self.push_free_chain(shard, &buf);
        }
        if freed > 0 {
            shard.freed.fetch_add(freed as u64, Ordering::Relaxed);
            shard.live.fetch_sub(freed as i64, Ordering::Relaxed);
        }
        freed
    }

    /// Destructure an exclusively-owned tuple: free the slot and return the
    /// value by move, *without* touching the children's reference counts
    /// (their ownership transfers to the caller through the returned value).
    ///
    /// This is the fast path of persistent-tree "expose": when a writer
    /// owns the only reference to a node (`rc == 1`), the node cannot be
    /// part of any snapshot, so it can be dismantled in place instead of
    /// path-copied.
    ///
    /// Panics if the slot is not occupied with `rc == 1`.
    pub fn take(&self, id: NodeId) -> T {
        let shard = self.shard(self.ctx());
        let slot = self.slot(id);
        let meta = slot.meta.load(Ordering::Acquire);
        assert!(meta & OCCUPIED != 0, "take of freed slot {id:?}");
        assert_eq!(meta & LOW_MASK, 1, "take of shared slot {id:?}");
        // Exclusive: rc == 1 and the caller owns that reference, so no
        // other thread can read or modify this slot.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        let gen = ((meta & GEN_MASK) >> GEN_SHIFT).wrapping_add(1) & (GEN_MASK >> GEN_SHIFT);
        self.push_free_chain(shard, &[(id.0, gen)]);
        shard.freed.fetch_add(1, Ordering::Relaxed);
        shard.live.fetch_sub(1, Ordering::Relaxed);
        value
    }

    /// [`Arena::collect`] on an optional root; nil is a no-op.
    #[inline]
    pub fn collect_opt(&self, root: OptNodeId) -> usize {
        match root.get() {
            Some(id) => self.collect(id),
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Number of currently allocated tuples. The *precision* audits compare
    /// this against the reachable set of the live versions.
    pub fn live(&self) -> u64 {
        self.allocated_total().saturating_sub(self.freed_total())
    }

    /// Total `alloc` calls ever performed.
    pub fn allocated_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.allocated.load(Ordering::Relaxed))
            .sum()
    }

    /// Total tuples ever freed by `collect`.
    pub fn freed_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.freed.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of the allocation counters, rolled up across shards.
    pub fn stats(&self) -> ArenaStats {
        let allocated_total = self.allocated_total();
        let freed_total = self.freed_total();
        let peak: i64 = self
            .shards
            .iter()
            .map(|s| s.peak_live.load(Ordering::Relaxed).max(0))
            .sum();
        ArenaStats {
            allocated_total,
            freed_total,
            live: allocated_total.saturating_sub(freed_total),
            peak_live: peak as u64,
            shards: self.shards.len() as u64,
        }
    }
}

impl<T: Tuple> Drop for Arena<T> {
    fn drop(&mut self) {
        // Drop any still-occupied values, then free the chunk storage.
        // `next_fresh` bounds every id ever handed out (ids beyond the
        // shard cursors inside carved blocks have zeroed metadata).
        let fresh = self
            .next_fresh
            .load(Ordering::Acquire)
            .min(Self::capacity());
        for raw in 0..fresh as u32 {
            let (chunk, offset) = locate(raw);
            let ptr = self.chunk_ptr(chunk);
            if ptr.is_null() {
                continue;
            }
            let slot = unsafe { &*ptr.add(offset) };
            if slot.meta.load(Ordering::Acquire) & OCCUPIED != 0 {
                unsafe {
                    std::ptr::drop_in_place((*slot.value.get()).assume_init_mut() as *mut T);
                }
            }
        }
        for chunk in 0..NUM_CHUNKS {
            let ptr = self.chunk_ptr(chunk);
            if !ptr.is_null() {
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        ptr,
                        chunk_len(chunk),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Leaf;
    use std::sync::Arc;

    /// A binary tuple with two optional children — the canonical PLM shape.
    struct Pair {
        left: OptNodeId,
        right: OptNodeId,
        #[allow(dead_code)]
        payload: u64,
    }

    impl Tuple for Pair {
        fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
            if let Some(l) = self.left.get() {
                f(l);
            }
            if let Some(r) = self.right.get() {
                f(r);
            }
        }
    }

    fn leaf(arena: &Arena<Pair>, payload: u64) -> NodeId {
        arena.alloc(Pair {
            left: OptNodeId::NONE,
            right: OptNodeId::NONE,
            payload,
        })
    }

    #[test]
    fn locate_math() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, (BASE - 1) as usize));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, (2 * BASE - 1) as usize));
        assert_eq!(locate(3 * BASE), (2, 0));
        // Every index in the first few chunks maps to a unique slot.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 * BASE {
            assert!(seen.insert(locate(i)), "duplicate slot for index {i}");
        }
    }

    #[test]
    fn alloc_get_roundtrip() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(41));
        let b = arena.alloc(Leaf(42));
        assert_eq!(arena.get(a).0, 41);
        assert_eq!(arena.get(b).0, 42);
        assert_eq!(arena.rc(a), 1);
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn collect_frees_chain() {
        let arena: Arena<Pair> = Arena::new();
        // c <- b <- a (a is root)
        let c = leaf(&arena, 3);
        let b = arena.alloc(Pair {
            left: OptNodeId::some(c),
            right: OptNodeId::NONE,
            payload: 2,
        });
        let a = arena.alloc(Pair {
            left: OptNodeId::some(b),
            right: OptNodeId::NONE,
            payload: 1,
        });
        assert_eq!(arena.live(), 3);
        let freed = arena.collect(a);
        assert_eq!(freed, 3);
        assert_eq!(arena.live(), 0);
        assert!(!arena.is_occupied(a));
    }

    #[test]
    fn shared_child_survives_one_parent() {
        let arena: Arena<Pair> = Arena::new();
        let shared = leaf(&arena, 9);
        arena.inc(shared); // second parent's reference
        let p1 = arena.alloc(Pair {
            left: OptNodeId::some(shared),
            right: OptNodeId::NONE,
            payload: 1,
        });
        let p2 = arena.alloc(Pair {
            left: OptNodeId::some(shared),
            right: OptNodeId::NONE,
            payload: 2,
        });
        assert_eq!(arena.rc(shared), 2);
        assert_eq!(arena.collect(p1), 1); // only p1 freed
        assert!(arena.is_occupied(shared));
        assert_eq!(arena.rc(shared), 1);
        assert_eq!(arena.collect(p2), 2); // p2 and shared freed
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn dag_diamond_collects_once() {
        let arena: Arena<Pair> = Arena::new();
        let bottom = leaf(&arena, 0);
        arena.inc(bottom);
        let l = arena.alloc(Pair {
            left: OptNodeId::some(bottom),
            right: OptNodeId::NONE,
            payload: 1,
        });
        let r = arena.alloc(Pair {
            left: OptNodeId::some(bottom),
            right: OptNodeId::NONE,
            payload: 2,
        });
        let top = arena.alloc(Pair {
            left: OptNodeId::some(l),
            right: OptNodeId::some(r),
            payload: 3,
        });
        assert_eq!(arena.collect(top), 4);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(1));
        let raw = a.index();
        arena.collect(a);
        let b = arena.alloc(Leaf(2));
        assert_eq!(b.index(), raw, "freed slot should be recycled");
        assert_eq!(arena.get(b).0, 2);
        assert_eq!(arena.stats().allocated_total, 2);
        assert_eq!(arena.stats().freed_total, 1);
        assert_eq!(arena.stats().live, 1);
    }

    #[test]
    fn generation_bumps_on_reuse() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(1));
        let gen0 = arena.generation(a);
        arena.collect(a);
        let b = arena.alloc(Leaf(2));
        assert_eq!(b.index(), a.index());
        assert_eq!(arena.generation(b), gen0 + 1, "free must bump the tag");
    }

    #[test]
    #[should_panic(expected = "access to freed slot")]
    fn get_after_free_panics() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(1));
        arena.collect(a);
        let _ = arena.get(a);
    }

    #[test]
    fn values_drop_on_free_and_arena_drop() {
        struct Probe(Arc<std::sync::atomic::AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let arena: Arena<Leaf<Probe>> = Arena::new();
        let a = arena.alloc(Leaf(Probe(drops.clone())));
        let _b = arena.alloc(Leaf(Probe(drops.clone())));
        arena.collect(a);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(arena); // _b still occupied: dropped with the arena
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let arena: Arena<Pair> = Arena::new();
        let mut cur = leaf(&arena, 0);
        for i in 1..200_000u64 {
            cur = arena.alloc(Pair {
                left: OptNodeId::some(cur),
                right: OptNodeId::NONE,
                payload: i,
            });
        }
        assert_eq!(arena.collect(cur), 200_000);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let ids: Vec<_> = (0..100).map(|i| arena.alloc(Leaf(i))).collect();
        for id in ids {
            arena.collect(id);
        }
        let stats = arena.stats();
        assert_eq!(stats.live, 0);
        assert_eq!(stats.peak_live, 100);
    }

    #[test]
    fn concurrent_alloc_collect_stress() {
        let arena: Arc<Arena<Pair>> = Arc::new(Arena::new());
        let threads = 4;
        let per_thread = 2_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let arena = &arena;
                s.spawn(move || {
                    let mut roots = Vec::new();
                    for i in 0..per_thread {
                        let l = leaf(arena, i);
                        let r = leaf(arena, i + 1);
                        let p = arena.alloc(Pair {
                            left: OptNodeId::some(l),
                            right: OptNodeId::some(r),
                            payload: t as u64,
                        });
                        roots.push(p);
                        if i % 3 == 0 {
                            if let Some(old) = roots.pop() {
                                arena.collect(old);
                            }
                        }
                    }
                    for r in roots {
                        arena.collect(r);
                    }
                });
            }
        });
        assert_eq!(arena.live(), 0, "stress must end with empty arena");
        assert_eq!(arena.allocated_total(), arena.freed_total());
    }

    #[test]
    fn cross_chunk_allocation() {
        let arena: Arena<Leaf<u32>> = Arena::new();
        let n = 3 * BASE + 7; // spans three chunks
        let ids: Vec<_> = (0..n).map(|i| arena.alloc(Leaf(i))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(arena.get(*id).0 as usize, i);
        }
        for id in ids {
            arena.collect(id);
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn thread_seed_sanitizer_preserves_consecutiveness() {
        // Regression: masking with `NO_PIN - 1` cleared bit 0, making
        // every thread-affine seed even — odd shards were unreachable by
        // default-path allocation and thread pairs shared a shard.
        assert_eq!(sanitize_seed(0), 0);
        assert_eq!(sanitize_seed(1), 1, "odd seeds must survive");
        assert_eq!(sanitize_seed(NO_PIN), 0, "sentinel must be remapped");
        for raw in 0..16u32 {
            assert_eq!(
                sanitize_seed(raw) & 1,
                raw & 1,
                "parity (lowest shard bit) must be preserved"
            );
            assert_ne!(sanitize_seed(raw), NO_PIN);
        }
    }

    #[test]
    fn single_shard_matches_classic_behaviour() {
        let arena: Arena<Leaf<u64>> = Arena::with_shards(1);
        assert_eq!(arena.shards(), 1);
        let a = arena.alloc(Leaf(1));
        arena.collect(a);
        let b = arena.alloc(Leaf(2));
        assert_eq!(a.index(), b.index());
        arena.collect(b);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn distinct_ctxs_use_distinct_shards() {
        let arena: Arena<Leaf<u64>> = Arena::with_shards(4);
        assert_eq!(arena.shards(), 4);
        let c0 = arena.ctx_for(0);
        let c1 = arena.ctx_for(1);
        assert_ne!(c0.shard_index(), c1.shard_index());
        // Ids allocated through different contexts come from different
        // fresh blocks.
        let a = arena.alloc_in(c0, Leaf(0));
        let b = arena.alloc_in(c1, Leaf(1));
        assert_ne!(
            a.index() / FRESH_BLOCK as u32,
            b.index() / FRESH_BLOCK as u32
        );
        arena.collect_in(c0, a);
        arena.collect_in(c1, b);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn stealing_recycles_sibling_free_slots() {
        let arena: Arena<Leaf<u64>> = Arena::with_shards(2);
        let c0 = arena.ctx_for(0);
        let c1 = arena.ctx_for(1);
        // Free a slot into shard 1's freelist.
        let a = arena.alloc_in(c1, Leaf(7));
        arena.collect_in(c1, a);
        // Shard 0 has an empty freelist and has never opened a fresh
        // window, so (steal preceding refill) its very next allocation
        // should recover `a` from shard 1; the loop tolerates any
        // ordering as long as the slot comes back eventually.
        let mut drained = Vec::new();
        loop {
            let id = arena.alloc_in(c0, Leaf(0));
            if id == a {
                // Got the stolen slot back.
                break;
            }
            drained.push(id);
            assert!(
                drained.len() <= 2 * FRESH_BLOCK as usize,
                "never stole sibling's freed slot"
            );
        }
        for id in drained {
            arena.collect_in(c0, id);
        }
        arena.collect_in(c0, a);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn pin_routes_allocations_to_one_shard() {
        let arena: Arena<Leaf<u64>> = Arena::with_shards(4);
        let ctx = arena.ctx_for(3);
        let ids: Vec<_> = arena.with_ctx(ctx, || (0..10).map(|i| arena.alloc(Leaf(i))).collect());
        // All ids come from one fresh block — proof they hit one shard.
        let block = ids[0].index() / FRESH_BLOCK as u32;
        for id in &ids {
            assert_eq!(id.index() / FRESH_BLOCK as u32, block);
        }
        // The pin is gone after the scope; nested pins restore properly.
        let g1 = arena.pin(arena.ctx_for(1));
        let g2 = arena.pin(arena.ctx_for(2));
        assert_eq!(arena.ctx().shard_index(), 2);
        drop(g2);
        assert_eq!(arena.ctx().shard_index(), 1);
        drop(g1);
        for id in ids {
            arena.collect(id);
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn panicking_value_drop_cannot_double_free() {
        // A destructor that panics mid-collect unwinds past the
        // buffered freelist flush. Slots whose values already ran their
        // destructor must read as free so `Arena::drop` does not run
        // those destructors again: every value drops exactly once.
        use std::sync::atomic::AtomicU64 as StdAtomicU64;
        struct Bomb {
            next: OptNodeId,
            drops: Arc<StdAtomicU64>,
        }
        impl Tuple for Bomb {
            fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
                if let Some(n) = self.next.get() {
                    f(n);
                }
            }
        }
        impl Drop for Bomb {
            fn drop(&mut self) {
                let count = self.drops.fetch_add(1, Ordering::Relaxed) + 1;
                if count == 3 && !std::thread::panicking() {
                    panic!("boom on drop #3");
                }
            }
        }
        let drops = Arc::new(StdAtomicU64::new(0));
        let arena: Arena<Bomb> = Arena::with_shards(1);
        let n = 8u64;
        let mut cur = OptNodeId::NONE;
        for _ in 0..n {
            cur = OptNodeId::some(arena.alloc(Bomb {
                next: cur,
                drops: drops.clone(),
            }));
        }
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.collect(cur.unwrap());
        }));
        assert!(unwound.is_err(), "the armed destructor must have fired");
        drop(arena);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            n,
            "every value must drop exactly once (no double drop, no skip)"
        );
    }

    #[test]
    fn task_ctx_bypasses_pins() {
        // A fork-join subtask must allocate through its executing
        // thread's own shard even when the thread carries a batch pin
        // (forker's pin inherited inline, or a helper's unrelated pin).
        let arena: Arena<Leaf<u64>> = Arena::with_shards(4);
        let affine = arena.task_ctx().shard_index();
        let pinned = (affine + 1) % 4;
        let _guard = arena.pin(arena.ctx_for(pinned));
        assert_eq!(arena.ctx().shard_index(), pinned, "pin governs ctx()");
        assert_eq!(
            arena.task_ctx().shard_index(),
            affine,
            "task_ctx() must ignore the pin"
        );
    }

    #[test]
    fn pin_is_scoped_to_one_arena() {
        // Pinning arena A must not reroute allocation on arena B inside
        // the same scope: B falls back to its own (affine) routing.
        let a: Arena<Leaf<u64>> = Arena::with_shards(4);
        let b: Arena<Leaf<u64>> = Arena::with_shards(4);
        let affine_b = b.ctx().shard_index();
        let pinned = (affine_b + 1) % 4; // a shard B would not pick
        let _guard = a.pin(a.ctx_for(pinned));
        assert_eq!(a.ctx().shard_index(), pinned, "pin applies to A");
        assert_eq!(b.ctx().shard_index(), affine_b, "pin must not leak to B");
    }

    #[test]
    fn buffered_collect_crosses_flush_boundary() {
        // A chain longer than FREE_BUF exercises the chain-splice path
        // more than once, including the final partial flush.
        let arena: Arena<Pair> = Arena::new();
        let n = 3 * FREE_BUF + 17;
        let mut cur = leaf(&arena, 0);
        for i in 1..n as u64 {
            cur = arena.alloc(Pair {
                left: OptNodeId::some(cur),
                right: OptNodeId::NONE,
                payload: i,
            });
        }
        assert_eq!(arena.collect(cur), n);
        assert_eq!(arena.live(), 0);
        // Every freed slot is reachable again through the freelist: the
        // next n allocations recycle without growing the arena.
        let before = arena.stats().allocated_total;
        let ids: Vec<_> = (0..n as u64).map(|i| leaf(&arena, i)).collect();
        assert_eq!(arena.stats().allocated_total, before + n as u64);
        assert_eq!(arena.live(), n as u64);
        for id in ids {
            arena.collect(id);
        }
        assert_eq!(arena.live(), 0);
    }
}
