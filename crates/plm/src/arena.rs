//! Lock-free chunked slab with atomic reference counts.
//!
//! Layout: slots live in up to [`NUM_CHUNKS`] chunks whose sizes double
//! (`BASE`, `2*BASE`, `4*BASE`, …). Chunks are installed lazily with a
//! single CAS and are never moved or freed until the arena drops, so a
//! `&T` handed out by [`Arena::get`] stays valid storage for the arena's
//! lifetime regardless of concurrent allocation. Freed slots recycle
//! through a tagged Treiber stack (the tag defeats ABA on the head).
//!
//! Per-slot metadata packs into one `AtomicU64`:
//!
//! ```text
//! bit 63      : OCCUPIED
//! bits 32..63 : generation (bumped on every free; detects stale ids)
//! bits  0..32 : reference count (occupied) | next free index (free)
//! ```
//!
//! Reference-count updates are single `fetch_add`/`fetch_sub` instructions
//! on the metadata word — they can never carry into the generation field
//! because the owner invariant guarantees `1 <= rc < 2^32` whenever an
//! increment or decrement happens.

use core::sync::atomic::{fence, AtomicU64, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crate::{NodeId, OptNodeId, Tuple};

/// log2 of the first chunk's slot count.
const BASE_BITS: u32 = 10;
/// Slot count of chunk 0.
const BASE: u32 = 1 << BASE_BITS;
/// Maximum number of chunks; capacity is `BASE * (2^NUM_CHUNKS - 1)` slots,
/// which exhausts the 32-bit id space.
const NUM_CHUNKS: usize = 22;

const OCCUPIED: u64 = 1 << 63;
const GEN_SHIFT: u32 = 32;
const GEN_MASK: u64 = ((1u64 << 31) - 1) << GEN_SHIFT;
const LOW_MASK: u64 = (1u64 << 32) - 1;

/// Freelist "empty" marker (also used as a slot's "no next" link).
const NIL: u32 = u32::MAX;

#[inline]
fn locate(index: u32) -> (usize, usize) {
    // Chunk c covers indices [BASE*(2^c - 1), BASE*(2^(c+1) - 1)).
    let adjusted = (index as u64 + BASE as u64) >> BASE_BITS; // >= 1
    let chunk = 63 - adjusted.leading_zeros() as u64;
    let chunk_start = ((1u64 << chunk) - 1) << BASE_BITS;
    (chunk as usize, (index as u64 - chunk_start) as usize)
}

#[inline]
fn chunk_len(chunk: usize) -> usize {
    (BASE as usize) << chunk
}

struct Slot<T> {
    meta: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            meta: AtomicU64::new(0),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// Point-in-time allocation statistics (see [`Arena::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total number of `alloc` calls ever performed.
    pub allocated_total: u64,
    /// Total number of slots freed by `collect`.
    pub freed_total: u64,
    /// Currently allocated (not yet freed) slots.
    pub live: u64,
    /// High-water mark of `live`.
    pub peak_live: u64,
}

/// A concurrent slab of reference-counted tuples — the PLM memory of the
/// paper. See the crate docs for the ownership convention.
pub struct Arena<T: Tuple> {
    chunks: [AtomicU64; NUM_CHUNKS], // raw `*mut Slot<T>` stored as u64
    /// Tagged Treiber head: `(tag << 32) | index`.
    free_head: AtomicU64,
    /// Bump pointer for never-used slots.
    next_fresh: AtomicU64,
    allocated_total: AtomicU64,
    freed_total: AtomicU64,
    peak_live: AtomicU64,
    _marker: std::marker::PhantomData<T>,
}

unsafe impl<T: Tuple> Send for Arena<T> {}
unsafe impl<T: Tuple> Sync for Arena<T> {}

impl<T: Tuple> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Tuple> Arena<T> {
    /// Create an empty arena. No chunks are allocated until first use.
    pub fn new() -> Self {
        Arena {
            chunks: std::array::from_fn(|_| AtomicU64::new(0)),
            free_head: AtomicU64::new(NIL as u64),
            next_fresh: AtomicU64::new(0),
            allocated_total: AtomicU64::new(0),
            freed_total: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Maximum number of slots this arena can ever hold.
    pub const fn capacity() -> u64 {
        (BASE as u64) * ((1u64 << NUM_CHUNKS) - 1)
    }

    #[inline]
    fn chunk_ptr(&self, chunk: usize) -> *mut Slot<T> {
        self.chunks[chunk].load(Ordering::Acquire) as *mut Slot<T>
    }

    /// Get (or lazily install) chunk `chunk`.
    fn ensure_chunk(&self, chunk: usize) -> *mut Slot<T> {
        let existing = self.chunk_ptr(chunk);
        if !existing.is_null() {
            return existing;
        }
        // Build a fresh chunk. Slots are zeroed metadata + uninit values.
        let len = chunk_len(chunk);
        let mut v: Vec<Slot<T>> = Vec::with_capacity(len);
        v.resize_with(len, Slot::new);
        let boxed: Box<[Slot<T>]> = v.into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut Slot<T>;
        match self.chunks[chunk].compare_exchange(
            0,
            ptr as u64,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => ptr,
            Err(winner) => {
                // Lost the install race; drop ours (values are uninit, so
                // rebuilding the box only frees the raw slot storage).
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
                }
                winner as *mut Slot<T>
            }
        }
    }

    #[inline]
    fn slot(&self, id: NodeId) -> &Slot<T> {
        let (chunk, offset) = locate(id.0);
        let ptr = self.chunk_ptr(chunk);
        debug_assert!(!ptr.is_null(), "slot in uninstalled chunk: {id:?}");
        unsafe { &*ptr.add(offset) }
    }

    fn pop_free(&self) -> Option<NodeId> {
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            let idx = (head & LOW_MASK) as u32;
            if idx == NIL {
                return None;
            }
            let tag = head >> 32;
            let next = self.slot(NodeId(idx)).meta.load(Ordering::Acquire) & LOW_MASK;
            let new_head = ((tag + 1) << 32) | next;
            if self
                .free_head
                .compare_exchange_weak(head, new_head, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(NodeId(idx));
            }
        }
    }

    fn push_free(&self, id: NodeId, gen: u64) {
        let slot = self.slot(id);
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            let tag = head >> 32;
            // Keep the bumped generation; link low bits to the old head.
            slot.meta
                .store((gen << GEN_SHIFT) | (head & LOW_MASK), Ordering::Release);
            let new_head = ((tag + 1) << 32) | id.0 as u64;
            if self
                .free_head
                .compare_exchange_weak(head, new_head, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Allocate a tuple with reference count 1 (owned by the caller).
    ///
    /// Ownership convention: any `NodeId` children inside `value` are
    /// *transferred* to the new tuple — the caller gives up its owned
    /// reference to each child and must **not** `collect` them. To keep an
    /// independent reference to a child, call [`Arena::inc`] first.
    pub fn alloc(&self, value: T) -> NodeId {
        let id = match self.pop_free() {
            Some(id) => id,
            None => {
                let fresh = self.next_fresh.fetch_add(1, Ordering::Relaxed);
                assert!(fresh < Self::capacity(), "arena capacity exhausted");
                let id = NodeId(fresh as u32);
                let (chunk, _) = locate(id.0);
                self.ensure_chunk(chunk);
                id
            }
        };
        let slot = self.slot(id);
        let gen = (slot.meta.load(Ordering::Acquire) & GEN_MASK) >> GEN_SHIFT;
        unsafe {
            (*slot.value.get()).write(value);
        }
        // Publish: value write happens-before any Acquire load of the meta.
        slot.meta
            .store(OCCUPIED | (gen << GEN_SHIFT) | 1, Ordering::Release);
        let alloc = self.allocated_total.fetch_add(1, Ordering::Relaxed) + 1;
        let live = alloc.saturating_sub(self.freed_total.load(Ordering::Relaxed));
        self.peak_live.fetch_max(live, Ordering::Relaxed);
        id
    }

    /// Read a tuple. Panics if the slot has been freed and not reused (a
    /// deterministic catch for dangling ids); see the crate-level safety
    /// contract for the reuse caveat.
    #[inline]
    pub fn get(&self, id: NodeId) -> &T {
        let slot = self.slot(id);
        let meta = slot.meta.load(Ordering::Acquire);
        assert!(meta & OCCUPIED != 0, "access to freed slot {id:?}");
        unsafe { (*slot.value.get()).assume_init_ref() }
    }

    /// Read a tuple without the occupancy check.
    ///
    /// # Safety
    /// The caller must guarantee the slot is occupied, i.e. it holds (or a
    /// live version transitively holds) an owned reference to `id`.
    #[inline]
    pub unsafe fn get_unchecked(&self, id: NodeId) -> &T {
        let slot = self.slot(id);
        unsafe { (*slot.value.get()).assume_init_ref() }
    }

    /// Mutably access a tuple in place.
    ///
    /// # Safety
    /// The caller must own the *only* reference (`rc == 1` and the caller
    /// owns it), so no concurrent reader can observe the node — this is the
    /// PAM-style in-place-update fast path used by `mvcc-ftree` during
    /// write transactions.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut_unchecked(&self, id: NodeId) -> &mut T {
        let slot = self.slot(id);
        debug_assert_eq!(self.rc(id), 1, "in-place mutation of shared node");
        unsafe { (*slot.value.get()).assume_init_mut() }
    }

    /// Current reference count of an occupied slot (diagnostics/tests).
    #[inline]
    pub fn rc(&self, id: NodeId) -> u32 {
        let meta = self.slot(id).meta.load(Ordering::Acquire);
        debug_assert!(meta & OCCUPIED != 0, "rc of freed slot {id:?}");
        (meta & LOW_MASK) as u32
    }

    /// Whether the slot is currently occupied.
    #[inline]
    pub fn is_occupied(&self, id: NodeId) -> bool {
        self.slot(id).meta.load(Ordering::Acquire) & OCCUPIED != 0
    }

    /// Add one owner to `id` (sharing a child between two parents, or
    /// retaining a version root). Mirrors `Arc::clone`'s relaxed increment:
    /// the caller already owns a reference, so the node cannot be freed
    /// concurrently.
    #[inline]
    pub fn inc(&self, id: NodeId) {
        let old = self.slot(id).meta.fetch_add(1, Ordering::Relaxed);
        debug_assert!(old & OCCUPIED != 0, "inc of freed slot {id:?}");
        debug_assert!(old & LOW_MASK >= 1, "inc resurrecting dead slot {id:?}");
    }

    /// Convenience: `inc` on a non-nil optional id.
    #[inline]
    pub fn inc_opt(&self, id: OptNodeId) {
        if let Some(id) = id.get() {
            self.inc(id);
        }
    }

    /// Algorithm 5, iteratively: release one owned reference to `root`;
    /// if that was the last owner, free the tuple and collect its children.
    /// Returns the number of tuples freed (the `S` of Theorem 4.2 — total
    /// work is `O(S + 1)`).
    pub fn collect(&self, root: NodeId) -> usize {
        let mut freed = 0usize;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut cur = Some(root);
        while let Some(id) = cur.take().or_else(|| stack.pop()) {
            let slot = self.slot(id);
            let old = slot.meta.fetch_sub(1, Ordering::Release);
            debug_assert!(old & OCCUPIED != 0, "collect of freed slot {id:?}");
            debug_assert!(old & LOW_MASK >= 1, "rc underflow at {id:?}");
            if old & LOW_MASK == 1 {
                // Last owner: synchronize with all prior decrements, then
                // free. (Same fence protocol as `Arc::drop`.)
                fence(Ordering::Acquire);
                let gen = ((old & GEN_MASK) >> GEN_SHIFT).wrapping_add(1) & (GEN_MASK >> GEN_SHIFT);
                unsafe {
                    let value = (*slot.value.get()).assume_init_mut();
                    value.for_each_child(&mut |child| stack.push(child));
                    std::ptr::drop_in_place(value as *mut T);
                }
                self.push_free(id, gen);
                freed += 1;
            }
        }
        if freed > 0 {
            self.freed_total.fetch_add(freed as u64, Ordering::Relaxed);
        }
        freed
    }

    /// Destructure an exclusively-owned tuple: free the slot and return the
    /// value by move, *without* touching the children's reference counts
    /// (their ownership transfers to the caller through the returned value).
    ///
    /// This is the fast path of persistent-tree "expose": when a writer
    /// owns the only reference to a node (`rc == 1`), the node cannot be
    /// part of any snapshot, so it can be dismantled in place instead of
    /// path-copied.
    ///
    /// Panics if the slot is not occupied with `rc == 1`.
    pub fn take(&self, id: NodeId) -> T {
        let slot = self.slot(id);
        let meta = slot.meta.load(Ordering::Acquire);
        assert!(meta & OCCUPIED != 0, "take of freed slot {id:?}");
        assert_eq!(meta & LOW_MASK, 1, "take of shared slot {id:?}");
        // Exclusive: rc == 1 and the caller owns that reference, so no
        // other thread can read or modify this slot.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        let gen = ((meta & GEN_MASK) >> GEN_SHIFT).wrapping_add(1) & (GEN_MASK >> GEN_SHIFT);
        self.push_free(id, gen);
        self.freed_total.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// [`Arena::collect`] on an optional root; nil is a no-op.
    #[inline]
    pub fn collect_opt(&self, root: OptNodeId) -> usize {
        match root.get() {
            Some(id) => self.collect(id),
            None => 0,
        }
    }

    /// Number of currently allocated tuples. The *precision* audits compare
    /// this against the reachable set of the live versions.
    pub fn live(&self) -> u64 {
        self.allocated_total
            .load(Ordering::Relaxed)
            .saturating_sub(self.freed_total.load(Ordering::Relaxed))
    }

    /// Total `alloc` calls ever performed.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total.load(Ordering::Relaxed)
    }

    /// Total tuples ever freed by `collect`.
    pub fn freed_total(&self) -> u64 {
        self.freed_total.load(Ordering::Relaxed)
    }

    /// Snapshot of the allocation counters.
    pub fn stats(&self) -> ArenaStats {
        let allocated_total = self.allocated_total.load(Ordering::Relaxed);
        let freed_total = self.freed_total.load(Ordering::Relaxed);
        ArenaStats {
            allocated_total,
            freed_total,
            live: allocated_total.saturating_sub(freed_total),
            peak_live: self.peak_live.load(Ordering::Relaxed),
        }
    }
}

impl<T: Tuple> Drop for Arena<T> {
    fn drop(&mut self) {
        // Drop any still-occupied values, then free the chunk storage.
        let fresh = self
            .next_fresh
            .load(Ordering::Acquire)
            .min(Self::capacity());
        for raw in 0..fresh as u32 {
            let id = NodeId(raw);
            let (chunk, offset) = locate(raw);
            let ptr = self.chunk_ptr(chunk);
            if ptr.is_null() {
                continue;
            }
            let slot = unsafe { &*ptr.add(offset) };
            if slot.meta.load(Ordering::Acquire) & OCCUPIED != 0 {
                unsafe {
                    std::ptr::drop_in_place((*slot.value.get()).assume_init_mut() as *mut T);
                }
            }
            let _ = id;
        }
        for chunk in 0..NUM_CHUNKS {
            let ptr = self.chunk_ptr(chunk);
            if !ptr.is_null() {
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        ptr,
                        chunk_len(chunk),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Leaf;
    use std::sync::Arc;

    /// A binary tuple with two optional children — the canonical PLM shape.
    struct Pair {
        left: OptNodeId,
        right: OptNodeId,
        #[allow(dead_code)]
        payload: u64,
    }

    impl Tuple for Pair {
        fn for_each_child(&self, f: &mut dyn FnMut(NodeId)) {
            if let Some(l) = self.left.get() {
                f(l);
            }
            if let Some(r) = self.right.get() {
                f(r);
            }
        }
    }

    fn leaf(arena: &Arena<Pair>, payload: u64) -> NodeId {
        arena.alloc(Pair {
            left: OptNodeId::NONE,
            right: OptNodeId::NONE,
            payload,
        })
    }

    #[test]
    fn locate_math() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, (BASE - 1) as usize));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, (2 * BASE - 1) as usize));
        assert_eq!(locate(3 * BASE), (2, 0));
        // Every index in the first few chunks maps to a unique slot.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 * BASE {
            assert!(seen.insert(locate(i)), "duplicate slot for index {i}");
        }
    }

    #[test]
    fn alloc_get_roundtrip() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(41));
        let b = arena.alloc(Leaf(42));
        assert_eq!(arena.get(a).0, 41);
        assert_eq!(arena.get(b).0, 42);
        assert_eq!(arena.rc(a), 1);
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn collect_frees_chain() {
        let arena: Arena<Pair> = Arena::new();
        // c <- b <- a (a is root)
        let c = leaf(&arena, 3);
        let b = arena.alloc(Pair {
            left: OptNodeId::some(c),
            right: OptNodeId::NONE,
            payload: 2,
        });
        let a = arena.alloc(Pair {
            left: OptNodeId::some(b),
            right: OptNodeId::NONE,
            payload: 1,
        });
        assert_eq!(arena.live(), 3);
        let freed = arena.collect(a);
        assert_eq!(freed, 3);
        assert_eq!(arena.live(), 0);
        assert!(!arena.is_occupied(a));
    }

    #[test]
    fn shared_child_survives_one_parent() {
        let arena: Arena<Pair> = Arena::new();
        let shared = leaf(&arena, 9);
        arena.inc(shared); // second parent's reference
        let p1 = arena.alloc(Pair {
            left: OptNodeId::some(shared),
            right: OptNodeId::NONE,
            payload: 1,
        });
        let p2 = arena.alloc(Pair {
            left: OptNodeId::some(shared),
            right: OptNodeId::NONE,
            payload: 2,
        });
        assert_eq!(arena.rc(shared), 2);
        assert_eq!(arena.collect(p1), 1); // only p1 freed
        assert!(arena.is_occupied(shared));
        assert_eq!(arena.rc(shared), 1);
        assert_eq!(arena.collect(p2), 2); // p2 and shared freed
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn dag_diamond_collects_once() {
        let arena: Arena<Pair> = Arena::new();
        let bottom = leaf(&arena, 0);
        arena.inc(bottom);
        let l = arena.alloc(Pair {
            left: OptNodeId::some(bottom),
            right: OptNodeId::NONE,
            payload: 1,
        });
        let r = arena.alloc(Pair {
            left: OptNodeId::some(bottom),
            right: OptNodeId::NONE,
            payload: 2,
        });
        let top = arena.alloc(Pair {
            left: OptNodeId::some(l),
            right: OptNodeId::some(r),
            payload: 3,
        });
        assert_eq!(arena.collect(top), 4);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(1));
        let raw = a.index();
        arena.collect(a);
        let b = arena.alloc(Leaf(2));
        assert_eq!(b.index(), raw, "freed slot should be recycled");
        assert_eq!(arena.get(b).0, 2);
        assert_eq!(arena.stats().allocated_total, 2);
        assert_eq!(arena.stats().freed_total, 1);
        assert_eq!(arena.stats().live, 1);
    }

    #[test]
    #[should_panic(expected = "access to freed slot")]
    fn get_after_free_panics() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let a = arena.alloc(Leaf(1));
        arena.collect(a);
        let _ = arena.get(a);
    }

    #[test]
    fn values_drop_on_free_and_arena_drop() {
        struct Probe(Arc<std::sync::atomic::AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let arena: Arena<Leaf<Probe>> = Arena::new();
        let a = arena.alloc(Leaf(Probe(drops.clone())));
        let _b = arena.alloc(Leaf(Probe(drops.clone())));
        arena.collect(a);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(arena); // _b still occupied: dropped with the arena
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let arena: Arena<Pair> = Arena::new();
        let mut cur = leaf(&arena, 0);
        for i in 1..200_000u64 {
            cur = arena.alloc(Pair {
                left: OptNodeId::some(cur),
                right: OptNodeId::NONE,
                payload: i,
            });
        }
        assert_eq!(arena.collect(cur), 200_000);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let arena: Arena<Leaf<u64>> = Arena::new();
        let ids: Vec<_> = (0..100).map(|i| arena.alloc(Leaf(i))).collect();
        for id in ids {
            arena.collect(id);
        }
        let stats = arena.stats();
        assert_eq!(stats.live, 0);
        assert_eq!(stats.peak_live, 100);
    }

    #[test]
    fn concurrent_alloc_collect_stress() {
        let arena: Arc<Arena<Pair>> = Arc::new(Arena::new());
        let threads = 4;
        let per_thread = 2_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let arena = &arena;
                s.spawn(move || {
                    let mut roots = Vec::new();
                    for i in 0..per_thread {
                        let l = leaf(arena, i);
                        let r = leaf(arena, i + 1);
                        let p = arena.alloc(Pair {
                            left: OptNodeId::some(l),
                            right: OptNodeId::some(r),
                            payload: t as u64,
                        });
                        roots.push(p);
                        if i % 3 == 0 {
                            if let Some(old) = roots.pop() {
                                arena.collect(old);
                            }
                        }
                    }
                    for r in roots {
                        arena.collect(r);
                    }
                });
            }
        });
        assert_eq!(arena.live(), 0, "stress must end with empty arena");
        assert_eq!(arena.allocated_total(), arena.freed_total());
    }

    #[test]
    fn cross_chunk_allocation() {
        let arena: Arena<Leaf<u32>> = Arena::new();
        let n = 3 * BASE + 7; // spans three chunks
        let ids: Vec<_> = (0..n).map(|i| arena.alloc(Leaf(i))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(arena.get(*id).0 as usize, i);
        }
        for id in ids {
            arena.collect(id);
        }
        assert_eq!(arena.live(), 0);
    }
}
