//! # mvcc-plm — Pure-LISP-Machine tuple memory
//!
//! The paper ("Multiversion Concurrency with Bounded Delay and Precise
//! Garbage Collection", SPAA 2019) models shared state as a *pure LISP
//! machine* (PLM, §2): memory is a DAG of immutable fixed-arity tuples,
//! created by a `tuple(...)` instruction and read by `nth(t, i)`. Versions of
//! a functional data structure are pointers into this DAG, updates
//! path-copy, and garbage collection is reference counting (`collect`,
//! Algorithm 5): decrement a tuple's count, and when it reaches zero free it
//! and recursively collect its children, in time `O(S + 1)` for `S` freed
//! tuples (Theorem 4.2).
//!
//! This crate is that substrate:
//!
//! * [`Arena<T>`] — a lock-free chunked slab holding tuples of type `T`.
//!   Slots are addressed by 4-byte [`NodeId`]s (so tree links cost 4 bytes),
//!   chunks of doubling size are installed with a single CAS and never
//!   moved (so reads are wait-free and never invalidated), and freed slots
//!   recycle through **sharded** tagged Treiber stacks: allocation and
//!   collection route through a per-thread (or explicitly pinned, see
//!   [`AllocCtx`]) shard so concurrent writers do not serialize on one
//!   freelist head, stealing from sibling shards only when their own runs
//!   dry.
//! * Per-slot atomic reference counts with an *ownership* convention:
//!   `rc` equals the number of owners (parent tuples + external handles).
//!   [`Arena::alloc`] returns a node owned by the caller (`rc == 1`);
//!   linking it under a parent transfers that ownership; sharing a child
//!   between two parents requires [`Arena::inc`].
//! * [`Arena::collect`] — Algorithm 5, made iterative so deeply linear
//!   version graphs cannot overflow the call stack. It returns the number of
//!   tuples freed, which the benchmark harness uses to validate the
//!   `O(S + 1)` bound.
//! * Exact allocation statistics ([`Arena::live`], [`Arena::allocated_total`],
//!   [`Arena::freed_total`]) so the transaction layer and the tests can audit
//!   the paper's *precision* claim (Definition 2.1): in quiescence, the
//!   allocated space equals exactly the space reachable from live versions.
//!
//! ## Safety contract
//!
//! The arena is a low-level substrate. [`Arena::get`] checks (with an atomic
//! load) that the slot is currently occupied and panics otherwise, so a
//! dangling `NodeId` whose slot has been freed *and not yet reused* is caught
//! deterministically. A dangling `NodeId` whose slot has already been reused
//! is indistinguishable from a valid one — exactly the ABA inherent in any
//! recycling collector. The layers above (`mvcc-vm` + `mvcc-core`) guarantee
//! this never happens for correct clients: a version's tuples are only
//! collected after the *precise* version-maintenance object proves no
//! transaction still holds the version (Theorem 5.3). The concurrency stress
//! tests in this workspace run with `debug_assertions` generation checks to
//! empirically verify the claim.

//! ## Example
//!
//! ```
//! use mvcc_plm::{Arena, Leaf, OptNodeId};
//!
//! let arena: Arena<Leaf<&str>> = Arena::new();
//! let id = arena.alloc(Leaf("hello")); // caller owns one reference
//! assert_eq!(arena.get(id).0, "hello");
//! assert_eq!(arena.live(), 1);
//!
//! // Algorithm 5: dropping the last owner frees the tuple (and would
//! // recursively collect any children).
//! let freed = arena.collect(id);
//! assert_eq!(freed, 1);
//! assert_eq!(arena.live(), 0);
//! ```

mod arena;
mod id;
mod snzi;

pub use arena::{AllocCtx, Arena, ArenaStats, PinGuard};
pub use id::{NodeId, OptNodeId};
pub use snzi::Snzi;

/// A tuple type storable in the [`Arena`].
///
/// `for_each_child` must report every `NodeId` reference the value owns —
/// this is how [`Arena::collect`] traverses the memory graph (the `nth`
/// instruction of the PLM). The reported ids must all live in the *same*
/// arena the value was allocated in.
pub trait Tuple: Send + Sync + 'static {
    /// Invoke `f` on each child reference held by this tuple.
    fn for_each_child(&self, f: &mut dyn FnMut(NodeId));
}

/// Blanket helper: leaf payloads with no children.
///
/// Wrap any `Send + Sync + 'static` value in [`Leaf`] to store it in an
/// arena without writing a `Tuple` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leaf<T>(pub T);

impl<T: Send + Sync + 'static> Tuple for Leaf<T> {
    #[inline]
    fn for_each_child(&self, _f: &mut dyn FnMut(NodeId)) {}
}
