//! `mvcc-net` — a wire-protocol front end over the MVCC router, built
//! on **async session admission**.
//!
//! The crate answers one question: how do thousands of client
//! connections share a [`Router`]'s `N×P` session pids without a
//! thread per connection? The answer is the admission layer added to
//! `mvcc-core::pool` — [`SessionPool::poll_acquire`] parks a waiter in
//! the same FIFO ticket queue the blocking `acquire` path uses, at the
//! cost of a queue entry instead of a parked thread. This crate
//! supplies everything around that future:
//!
//! - [`proto`] — the length-prefixed binary protocol (GET/PUT/DEL and
//!   atomic TXN batches, versioned payloads, typed error replies);
//! - [`conn`] — per-connection nonblocking buffer management with
//!   structural backpressure;
//! - [`executor`] — the ready-set mini executor the server loop is
//!   built on (one session release → one future re-poll);
//! - [`server`] — the single-threaded poll loop multiplexing every
//!   connection onto the router, with FIFO admission auditing;
//! - [`client`] — a small blocking client for tests, benches and
//!   examples.
//!
//! Everything is `std`-only: nonblocking `std::net` sockets, a scan
//! poll loop, and hand-rolled wakers — no tokio, no epoll binding, in
//! keeping with the repo's no-external-dependencies rule.
//!
//! # A round trip
//!
//! ```
//! use std::sync::Arc;
//! use mvcc_net::{Client, Server, TxnOp};
//! use mvcc_core::Router;
//! use mvcc_ftree::U64Map;
//!
//! // Two shards, two pids each, fronted by a server on an ephemeral
//! // loopback port.
//! let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 2));
//! let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.put(7, 700).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(700));
//! client.txn(vec![TxnOp::Put { key: 7, value: 701 }]).unwrap();
//! assert_eq!(client.del(7).unwrap(), Some(701));
//! assert_eq!(client.get(7).unwrap(), None);
//!
//! drop(client);
//! handle.shutdown().unwrap();
//! assert_eq!(router.sessions_leased(), 0); // nothing leaked
//! ```
//!
//! # Overload behavior
//!
//! Every queue the server feeds is **bounded**, and overload degrades
//! to typed errors — never dropped connections, never unbounded
//! memory. Configure it with [`ServerConfig`] and
//! [`Server::start_with`]:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use mvcc_net::{Client, ClientError, Server, ServerConfig};
//! use mvcc_core::Router;
//! use mvcc_ftree::U64Map;
//!
//! let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
//! let handle = Server::start_with(
//!     Arc::clone(&router),
//!     "127.0.0.1:0",
//!     ServerConfig {
//!         // Shed once a shard's admission queue is 64 deep…
//!         shed_depth: Some(64),
//!         // …cancel admissions still queued after 20ms…
//!         request_deadline: Some(Duration::from_millis(20)),
//!         // …and close connections idle for a minute.
//!         idle_timeout: Some(Duration::from_secs(60)),
//!         retry_after_hint: Duration::from_millis(5),
//!     },
//! )
//! .unwrap();
//!
//! // A shed or expired request surfaces as a typed, retryable error —
//! // the connection is still good, and nothing was applied.
//! let mut client = Client::connect(handle.addr()).unwrap();
//! match client.put(1, 10) {
//!     Ok(()) => {}
//!     Err(ClientError::Overloaded { retry_after_ms, .. }) => {
//!         std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
//!         // …retry here…
//!     }
//!     Err(other) => panic!("{other}"),
//! }
//! # drop(client);
//! # handle.shutdown().unwrap();
//! ```
//!
//! The server's scan loop runs a coarse maintenance tick (~1ms): it
//! re-polls deadline-expired admissions, reaps idle connections
//! (mid-pipeline connections are never reaped), samples the
//! queue-depth high-water gauge into [`ServerStats`], and sweeps
//! expired session leases on the router. See `server` module docs for
//! the exact degradation contract.
//!
//! [`Router`]: mvcc_core::Router
//! [`SessionPool::poll_acquire`]: mvcc_core::SessionPool::poll_acquire

pub mod client;
pub mod conn;
pub mod executor;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use executor::block_on;
pub use proto::{ErrorCode, ProtoError, Request, Response, TxnOp};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
