//! `mvcc-net` — a wire-protocol front end over the MVCC router, built
//! on **async session admission**.
//!
//! The crate answers one question: how do thousands of client
//! connections share a [`Router`]'s `N×P` session pids without a
//! thread per connection? The answer is the admission layer added to
//! `mvcc-core::pool` — [`SessionPool::poll_acquire`] parks a waiter in
//! the same FIFO ticket queue the blocking `acquire` path uses, at the
//! cost of a queue entry instead of a parked thread. This crate
//! supplies everything around that future:
//!
//! - [`proto`] — the length-prefixed binary protocol (GET/PUT/DEL and
//!   atomic TXN batches, versioned payloads, typed error replies);
//! - [`conn`] — per-connection nonblocking buffer management with
//!   structural backpressure;
//! - [`executor`] — the ready-set mini executor the server loop is
//!   built on (one session release → one future re-poll);
//! - [`server`] — the single-threaded poll loop multiplexing every
//!   connection onto the router, with FIFO admission auditing;
//! - [`client`] — a small blocking client for tests, benches and
//!   examples.
//!
//! Everything is `std`-only: nonblocking `std::net` sockets, a scan
//! poll loop, and hand-rolled wakers — no tokio, no epoll binding, in
//! keeping with the repo's no-external-dependencies rule.
//!
//! # A round trip
//!
//! ```
//! use std::sync::Arc;
//! use mvcc_net::{Client, Server, TxnOp};
//! use mvcc_core::Router;
//! use mvcc_ftree::U64Map;
//!
//! // Two shards, two pids each, fronted by a server on an ephemeral
//! // loopback port.
//! let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 2));
//! let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.put(7, 700).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(700));
//! client.txn(vec![TxnOp::Put { key: 7, value: 701 }]).unwrap();
//! assert_eq!(client.del(7).unwrap(), Some(701));
//! assert_eq!(client.get(7).unwrap(), None);
//!
//! drop(client);
//! handle.shutdown().unwrap();
//! assert_eq!(router.sessions_leased(), 0); // nothing leaked
//! ```
//!
//! [`Router`]: mvcc_core::Router
//! [`SessionPool::poll_acquire`]: mvcc_core::SessionPool::poll_acquire

pub mod client;
pub mod conn;
pub mod executor;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use executor::block_on;
pub use proto::{ErrorCode, ProtoError, Request, Response, TxnOp};
pub use server::{Server, ServerHandle, ServerStats};
