//! The wire protocol: length-prefixed binary frames, versioned header,
//! typed error replies.
//!
//! # Framing
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame   := len: u32 LE ++ payload        (len = payload byte count)
//! payload := version: u8 ++ kind: u8 ++ body
//! ```
//!
//! `len` covers the payload only (not itself) and must not exceed
//! [`MAX_FRAME`]; an oversize length is a protocol error, not an
//! allocation — the peer is desynchronized or hostile, and the
//! connection closes after a typed error reply. `version` is
//! [`PROTO_VERSION`] in both directions; a mismatch is [`ErrorCode::
//! BadVersion`]. All integers are little-endian.
//!
//! # Requests
//!
//! `kind` is the opcode; keys and values are `u64`:
//!
//! ```text
//! GET (0x01)  body := key: u64
//! PUT (0x02)  body := key: u64 ++ value: u64
//! DEL (0x03)  body := key: u64
//! TXN (0x04)  body := count: u16 ++ count × op
//!             op   := 0x00 ++ key: u64 ++ value: u64   (put)
//!                   | 0x01 ++ key: u64                 (del)
//! ```
//!
//! `TXN` applies its ops as **one atomic write transaction** on the
//! shard its first key routes to; every key in the batch must route to
//! that same shard (shards are independent databases — cross-shard
//! atomicity does not exist), otherwise the server answers
//! [`ErrorCode::CrossShardTxn`] and applies nothing.
//!
//! # Responses
//!
//! `kind` is the status:
//!
//! ```text
//! VALUE   (0x01)  body := present: u8 ++ value: u64    (GET reply)
//! DONE    (0x02)  body := ε                            (PUT reply)
//! REMOVED (0x03)  body := present: u8 ++ prev: u64     (DEL reply)
//! TXN_OK  (0x04)  body := applied: u16                 (TXN reply)
//! ERR     (0xEE)  body := code: u8 ++ retry_ms: u16
//!                         ++ mlen: u16 ++ message: utf-8
//! ```
//!
//! `retry_ms` is the server's backoff hint: how long the client should
//! wait before retrying the request. It is meaningful for
//! [`ErrorCode::Overloaded`] (the load-shedding reply) and zero on
//! every other error (retrying a malformed frame will not help).
//!
//! `present = 0` means absent and the trailing `u64` is zero-filled.
//! Responses arrive strictly in request order per connection (the
//! server admits one request per connection at a time; pipelined
//! requests queue).
//!
//! The codec is allocation-light and symmetric: [`encode_request`] /
//! [`decode_request`] and [`encode_response`] / [`decode_response`]
//! append one whole frame to / split one whole frame off a byte
//! buffer; [`frame_payload`] does the length-prefix bookkeeping for
//! both directions.

use std::fmt;

/// Protocol version stamped on (and required of) every payload.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on one frame's payload, bytes. Large enough for a
/// `TXN` batch of [`MAX_TXN_OPS`] puts with slack, small enough that a
/// corrupt or hostile length prefix cannot balloon a connection buffer.
pub const MAX_FRAME: usize = 64 * 1024;

/// Upper bound on ops in one `TXN` batch (fits `u16` with room).
pub const MAX_TXN_OPS: usize = 3 * 1024;

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_TXN: u8 = 0x04;

const ST_VALUE: u8 = 0x01;
const ST_DONE: u8 = 0x02;
const ST_REMOVED: u8 = 0x03;
const ST_TXN_OK: u8 = 0x04;
const ST_ERR: u8 = 0xEE;

/// One mutation inside a [`Request::Txn`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// Insert-or-overwrite `key`.
    Put { key: u64, value: u64 },
    /// Remove `key` (absent keys are fine; the batch still commits).
    Del { key: u64 },
}

impl TxnOp {
    /// The key this op touches (what routing shards on).
    pub fn key(&self) -> u64 {
        match *self {
            TxnOp::Put { key, .. } | TxnOp::Del { key } => key,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get { key: u64 },
    /// Insert-or-overwrite.
    Put { key: u64, value: u64 },
    /// Remove, returning the previous value.
    Del { key: u64 },
    /// Atomic multi-op batch (single-shard; see module docs).
    Txn { ops: Vec<TxnOp> },
}

impl Request {
    /// The key the server routes this request's shard placement on
    /// (`None` for an empty `TXN`, which touches no shard).
    pub fn routing_key(&self) -> Option<u64> {
        match self {
            Request::Get { key } | Request::Put { key, .. } | Request::Del { key } => Some(*key),
            Request::Txn { ops } => ops.first().map(|op| op.key()),
        }
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `GET` reply.
    Value { value: Option<u64> },
    /// `PUT` reply.
    Done,
    /// `DEL` reply: the removed value, if the key was present.
    Removed { prev: Option<u64> },
    /// `TXN` reply: ops applied (always the whole batch — it commits
    /// atomically or errors).
    TxnOk { applied: u16 },
    /// Typed failure; the request had no effect.
    Error {
        code: ErrorCode,
        /// Backoff hint in milliseconds before retrying (nonzero only
        /// for [`ErrorCode::Overloaded`] — the shed reply tells the
        /// client when the queue is worth rejoining).
        retry_after_ms: u16,
        message: String,
    },
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload `version` byte was not [`PROTO_VERSION`].
    BadVersion = 1,
    /// Unknown request opcode.
    BadOpcode = 2,
    /// Body did not parse (truncated, trailing bytes, bad op kind…).
    Malformed = 3,
    /// `TXN` keys route to more than one shard; nothing was applied.
    CrossShardTxn = 4,
    /// Frame length exceeded [`MAX_FRAME`] or op count [`MAX_TXN_OPS`].
    Oversize = 5,
    /// The server shed this request instead of queuing it (admission
    /// queue over its depth threshold, or the request's deadline passed
    /// while it waited). Nothing was applied; the reply's
    /// `retry_after_ms` says when to try again. The connection stays
    /// open — shedding is per-request, never a disconnect.
    Overloaded = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadVersion,
            2 => ErrorCode::BadOpcode,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::CrossShardTxn,
            5 => ErrorCode::Oversize,
            6 => ErrorCode::Overloaded,
            _ => return None,
        })
    }
}

/// Decoder failure: the byte stream does not parse as this protocol.
/// Framing-level errors ([`ProtoError::Oversize`]) poison the whole
/// stream (the reader can no longer find frame boundaries); payload
/// errors poison only the request, but the server still closes the
/// connection after replying — a peer that framed garbage once will
/// again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame length prefix exceeds [`MAX_FRAME`].
    Oversize { len: usize },
    /// Payload shorter than its header/body demands.
    Truncated,
    /// Payload longer than its body: trailing bytes.
    Trailing { extra: usize },
    /// Version byte mismatch.
    BadVersion { got: u8 },
    /// Unknown opcode (requests) or status (responses).
    BadKind { got: u8 },
    /// `TXN` op count above [`MAX_TXN_OPS`].
    TooManyOps { count: usize },
    /// Error message bytes were not UTF-8.
    BadUtf8,
    /// Unknown [`ErrorCode`] discriminant in an `ERR` reply.
    BadErrorCode { got: u8 },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversize { len } => {
                write!(f, "frame length {len} exceeds MAX_FRAME {MAX_FRAME}")
            }
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::Trailing { extra } => write!(f, "{extra} trailing bytes after body"),
            ProtoError::BadVersion { got } => {
                write!(f, "protocol version {got} (expected {PROTO_VERSION})")
            }
            ProtoError::BadKind { got } => write!(f, "unknown opcode/status {got:#04x}"),
            ProtoError::TooManyOps { count } => {
                write!(
                    f,
                    "TXN batch of {count} ops exceeds MAX_TXN_OPS {MAX_TXN_OPS}"
                )
            }
            ProtoError::BadUtf8 => write!(f, "error message is not UTF-8"),
            ProtoError::BadErrorCode { got } => write!(f, "unknown error code {got}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Sequential reader over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Every decoder ends here: a payload with leftover bytes is as
    /// malformed as a short one.
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

/// Append a length-prefixed frame to `out`, with the payload written by
/// `body` (which sees `out` positioned after the version byte). Handles
/// the len-backpatch both encoders share.
pub fn frame_payload(out: &mut Vec<u8>, body: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    out.push(PROTO_VERSION);
    body(out);
    let payload = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload.to_le_bytes());
}

/// Split one complete frame off the front of `buf`: `Ok(Some((payload,
/// consumed)))` when a whole frame is buffered, `Ok(None)` when more
/// bytes are needed, `Err` when the length prefix itself is invalid
/// (the stream is unrecoverable — close the connection).
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtoError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Oversize { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Append `req` to `out` as one frame.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    frame_payload(out, |out| match req {
        Request::Get { key } => {
            out.push(OP_GET);
            put_u64(out, *key);
        }
        Request::Put { key, value } => {
            out.push(OP_PUT);
            put_u64(out, *key);
            put_u64(out, *value);
        }
        Request::Del { key } => {
            out.push(OP_DEL);
            put_u64(out, *key);
        }
        Request::Txn { ops } => {
            assert!(ops.len() <= MAX_TXN_OPS, "TXN batch exceeds MAX_TXN_OPS");
            out.push(OP_TXN);
            put_u16(out, ops.len() as u16);
            for op in ops {
                match *op {
                    TxnOp::Put { key, value } => {
                        out.push(0x00);
                        put_u64(out, key);
                        put_u64(out, value);
                    }
                    TxnOp::Del { key } => {
                        out.push(0x01);
                        put_u64(out, key);
                    }
                }
            }
        }
    });
}

/// Decode one request payload (a frame's contents, version byte
/// included).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut r = Reader::new(payload);
    let ver = r.u8()?;
    if ver != PROTO_VERSION {
        return Err(ProtoError::BadVersion { got: ver });
    }
    let req = match r.u8()? {
        OP_GET => Request::Get { key: r.u64()? },
        OP_PUT => Request::Put {
            key: r.u64()?,
            value: r.u64()?,
        },
        OP_DEL => Request::Del { key: r.u64()? },
        OP_TXN => {
            let count = r.u16()? as usize;
            if count > MAX_TXN_OPS {
                return Err(ProtoError::TooManyOps { count });
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(match r.u8()? {
                    0x00 => TxnOp::Put {
                        key: r.u64()?,
                        value: r.u64()?,
                    },
                    0x01 => TxnOp::Del { key: r.u64()? },
                    got => return Err(ProtoError::BadKind { got }),
                });
            }
            Request::Txn { ops }
        }
        got => return Err(ProtoError::BadKind { got }),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    out.push(v.is_some() as u8);
    put_u64(out, v.unwrap_or(0));
}

/// Append `resp` to `out` as one frame.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    frame_payload(out, |out| match resp {
        Response::Value { value } => {
            out.push(ST_VALUE);
            put_opt_u64(out, *value);
        }
        Response::Done => out.push(ST_DONE),
        Response::Removed { prev } => {
            out.push(ST_REMOVED);
            put_opt_u64(out, *prev);
        }
        Response::TxnOk { applied } => {
            out.push(ST_TXN_OK);
            put_u16(out, *applied);
        }
        Response::Error {
            code,
            retry_after_ms,
            message,
        } => {
            out.push(ST_ERR);
            out.push(*code as u8);
            put_u16(out, *retry_after_ms);
            let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
            put_u16(out, msg.len() as u16);
            out.extend_from_slice(msg);
        }
    });
}

/// Decode one response payload (a frame's contents, version byte
/// included).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut r = Reader::new(payload);
    let ver = r.u8()?;
    if ver != PROTO_VERSION {
        return Err(ProtoError::BadVersion { got: ver });
    }
    let resp = match r.u8()? {
        ST_VALUE => {
            let present = r.u8()? != 0;
            let v = r.u64()?;
            Response::Value {
                value: present.then_some(v),
            }
        }
        ST_DONE => Response::Done,
        ST_REMOVED => {
            let present = r.u8()? != 0;
            let v = r.u64()?;
            Response::Removed {
                prev: present.then_some(v),
            }
        }
        ST_TXN_OK => Response::TxnOk { applied: r.u16()? },
        ST_ERR => {
            let code = r.u8()?;
            let code = ErrorCode::from_u8(code).ok_or(ProtoError::BadErrorCode { got: code })?;
            let retry_after_ms = r.u16()?;
            let mlen = r.u16()? as usize;
            let message = std::str::from_utf8(r.take(mlen)?)
                .map_err(|_| ProtoError::BadUtf8)?
                .to_owned();
            Response::Error {
                code,
                retry_after_ms,
                message,
            }
        }
        got => return Err(ProtoError::BadKind { got }),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (payload, consumed) = split_frame(&buf).unwrap().expect("whole frame");
        assert_eq!(consumed, buf.len());
        assert_eq!(decode_request(payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (payload, consumed) = split_frame(&buf).unwrap().expect("whole frame");
        assert_eq!(consumed, buf.len());
        assert_eq!(decode_response(payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Get { key: 7 });
        roundtrip_request(Request::Put {
            key: u64::MAX,
            value: 0,
        });
        roundtrip_request(Request::Del { key: 1 << 40 });
        roundtrip_request(Request::Txn { ops: vec![] });
        roundtrip_request(Request::Txn {
            ops: vec![
                TxnOp::Put { key: 1, value: 2 },
                TxnOp::Del { key: 3 },
                TxnOp::Put { key: 4, value: 5 },
            ],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Value { value: Some(9) });
        roundtrip_response(Response::Value { value: None });
        roundtrip_response(Response::Done);
        roundtrip_response(Response::Removed { prev: Some(0) });
        roundtrip_response(Response::Removed { prev: None });
        roundtrip_response(Response::TxnOk { applied: 512 });
        roundtrip_response(Response::Error {
            code: ErrorCode::CrossShardTxn,
            retry_after_ms: 0,
            message: "keys 1 and 2 route to different shards".into(),
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            retry_after_ms: 250,
            message: "admission queue over depth threshold".into(),
        });
    }

    #[test]
    fn split_frame_waits_for_whole_frames() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { key: 42 }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
        // Two pipelined frames: the first splits off, the second waits.
        let first_len = buf.len();
        encode_request(&Request::Del { key: 43 }, &mut buf);
        let (_, consumed) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(consumed, first_len);
        let (payload2, _) = split_frame(&buf[consumed..]).unwrap().unwrap();
        assert_eq!(decode_request(payload2).unwrap(), Request::Del { key: 43 });
    }

    #[test]
    fn oversize_length_prefix_is_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert_eq!(
            split_frame(&buf),
            Err(ProtoError::Oversize { len: MAX_FRAME + 1 })
        );
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Wrong version.
        assert_eq!(
            decode_request(&[9, OP_GET, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtoError::BadVersion { got: 9 })
        );
        // Unknown opcode.
        assert_eq!(
            decode_request(&[PROTO_VERSION, 0x77]),
            Err(ProtoError::BadKind { got: 0x77 })
        );
        // Truncated body.
        assert_eq!(
            decode_request(&[PROTO_VERSION, OP_GET, 1, 2]),
            Err(ProtoError::Truncated)
        );
        // Trailing bytes.
        let mut buf = Vec::new();
        encode_request(&Request::Get { key: 1 }, &mut buf);
        let (payload, _) = split_frame(&buf).unwrap().unwrap();
        let mut fat = payload.to_vec();
        fat.push(0);
        assert_eq!(decode_request(&fat), Err(ProtoError::Trailing { extra: 1 }));
    }

    #[test]
    fn routing_key_is_the_first_touched_key() {
        assert_eq!(Request::Get { key: 5 }.routing_key(), Some(5));
        assert_eq!(Request::Txn { ops: vec![] }.routing_key(), None);
        assert_eq!(
            Request::Txn {
                ops: vec![TxnOp::Del { key: 8 }, TxnOp::Put { key: 9, value: 0 }]
            }
            .routing_key(),
            Some(8)
        );
    }
}
