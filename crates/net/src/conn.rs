//! Per-connection state: nonblocking reads into a frame buffer, parsed
//! requests queued for admission, responses staged for nonblocking
//! writes.
//!
//! A connection is plain data — no lifetimes, no futures. The server
//! pairs each `Conn` with at most one in-flight admission future; the
//! connection itself only moves bytes and frames:
//!
//! ```text
//! socket --read--> rbuf --split_frame/decode--> requests (VecDeque)
//! responses --encode--> wbuf --write--> socket
//! ```
//!
//! Backpressure is structural: reads stop while [`Conn::parsed_backlog`]
//! or the write buffer is over budget, so a client that pipelines
//! faster than its requests are admitted holds bytes in *its* socket,
//! not in server memory.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::proto::{self, ProtoError, Request, Response};

/// Stop reading a connection once this many parsed requests await
/// admission (the client is pipelining past its turn).
const MAX_PARSED_BACKLOG: usize = 64;

/// Stop reading while more than this many response bytes are unflushed.
const MAX_WRITE_BACKLOG: usize = 256 * 1024;

/// Per-read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// Why a connection ended (diagnostics; the server counts these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hangup {
    /// Peer closed or reset the socket.
    Eof,
    /// Socket error.
    Io(String),
    /// The byte stream violated the protocol; a typed error reply was
    /// staged before closing.
    Proto(ProtoError),
}

/// One client connection's IO state.
pub struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (`rpos..` is live; compacted when the
    /// consumed prefix dominates).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Staged outbound bytes (`wpos..` is unsent).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Parsed requests awaiting admission, in arrival order.
    requests: VecDeque<Request>,
    /// Set once the stream is beyond recovery: flush what is staged,
    /// then drop the connection.
    closing: Option<Hangup>,
}

impl Conn {
    /// Adopt an accepted stream (switches it to nonblocking mode).
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Frames are small; Nagle would add 40ms stalls to every
        // request/response turn on loopback.
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            requests: VecDeque::new(),
            closing: None,
        })
    }

    /// Parsed requests awaiting admission.
    pub fn parsed_backlog(&self) -> usize {
        self.requests.len()
    }

    /// Next request to admit, front of the arrival order.
    pub fn pop_request(&mut self) -> Option<Request> {
        self.requests.pop_front()
    }

    /// Stage a response for writing.
    pub fn push_response(&mut self, resp: &Response) {
        proto::encode_response(resp, &mut self.wbuf);
    }

    /// Stage a typed error reply and mark the stream for close-after-
    /// flush (protocol errors desynchronize framing; see `proto` docs).
    pub fn fail(&mut self, err: ProtoError) {
        let code = match err {
            ProtoError::Oversize { .. } | ProtoError::TooManyOps { .. } => {
                proto::ErrorCode::Oversize
            }
            ProtoError::BadVersion { .. } => proto::ErrorCode::BadVersion,
            ProtoError::BadKind { .. } => proto::ErrorCode::BadOpcode,
            _ => proto::ErrorCode::Malformed,
        };
        self.push_response(&Response::Error {
            code,
            retry_after_ms: 0,
            message: err.to_string(),
        });
        self.closing = Some(Hangup::Proto(err));
    }

    /// Has this connection ended? (After a final flush attempt.)
    pub fn hangup(&self) -> Option<&Hangup> {
        self.closing.as_ref()
    }

    /// Nothing staged, nothing parsed, nothing mid-frame?
    pub fn is_idle(&self) -> bool {
        self.requests.is_empty() && self.wbuf.len() == self.wpos && self.rbuf.len() == self.rpos
    }

    /// Pull whatever the socket has (until `WouldBlock`), split and
    /// decode complete frames into the request queue. Returns whether
    /// any byte or frame moved (the loop's progress signal).
    pub fn fill(&mut self) -> bool {
        if self.closing.is_some() {
            return false;
        }
        let mut progress = false;
        // Backpressure: don't read while admission or writes lag.
        while self.requests.len() < MAX_PARSED_BACKLOG
            && self.wbuf.len() - self.wpos < MAX_WRITE_BACKLOG
        {
            let old = self.rbuf.len();
            self.rbuf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old..]) {
                Ok(0) => {
                    self.rbuf.truncate(old);
                    self.closing = Some(Hangup::Eof);
                    break;
                }
                Ok(n) => {
                    self.rbuf.truncate(old + n);
                    progress = true;
                    if n < READ_CHUNK {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old);
                }
                Err(e) => {
                    self.rbuf.truncate(old);
                    self.closing = Some(Hangup::Io(e.to_string()));
                    break;
                }
            }
        }
        // Split and decode every complete frame.
        while self.closing.is_none() {
            match proto::split_frame(&self.rbuf[self.rpos..]) {
                Ok(Some((payload, consumed))) => {
                    match proto::decode_request(payload) {
                        Ok(req) => self.requests.push_back(req),
                        Err(e) => {
                            self.fail(e);
                            break;
                        }
                    }
                    self.rpos += consumed;
                    progress = true;
                }
                Ok(None) => break,
                Err(e) => {
                    self.fail(e);
                    break;
                }
            }
        }
        // Compact once the dead prefix dominates the buffer.
        if self.rpos > 0 && self.rpos * 2 >= self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        progress
    }

    /// Push staged response bytes to the socket (until `WouldBlock` or
    /// empty). Returns whether any byte moved.
    pub fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.closing = Some(Hangup::Eof);
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    if self.closing.is_none() {
                        self.closing = Some(Hangup::Io(e.to_string()));
                    }
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        progress
    }

    /// Are all staged response bytes on the wire?
    pub fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("parsed_backlog", &self.parsed_backlog())
            .field("unflushed", &(self.wbuf.len() - self.wpos))
            .field("closing", &self.closing)
            .finish()
    }
}
