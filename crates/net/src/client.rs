//! A minimal blocking client for the wire protocol — one request, one
//! reply, in order.
//!
//! The client is deliberately synchronous: benches and tests spawn one
//! per simulated connection, and the interesting asynchrony lives on
//! the *server* side (admission queues, not client threads). Each call
//! writes one frame and blocks on `read_exact` until the reply frame
//! arrives.
//!
//! Server-side typed errors surface as [`ClientError::Server`]; framing
//! violations in either direction surface as [`ClientError::Proto`].

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{self, ErrorCode, ProtoError, Request, Response, TxnOp, MAX_FRAME};

/// What a request can fail with, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, early close).
    Io(io::Error),
    /// The server's bytes violated the framing/codec rules.
    Proto(ProtoError),
    /// The server shed the request under overload
    /// ([`ErrorCode::Overloaded`]): nothing was applied, the connection
    /// is still good, and the server suggests backing off
    /// `retry_after_ms` before retrying.
    Overloaded {
        /// The server's backoff hint, milliseconds.
        retry_after_ms: u16,
        message: String,
    },
    /// The server answered with any other typed error reply.
    Server { code: ErrorCode, message: String },
    /// The reply decoded fine but was the wrong shape for the request
    /// (e.g. `TxnOk` answering a `GET`) — a server bug, not an IO one.
    UnexpectedReply(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Overloaded {
                retry_after_ms,
                message,
            } => {
                write!(
                    f,
                    "server overloaded (retry in {retry_after_ms}ms): {message}"
                )
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedReply(resp) => {
                write!(f, "reply shape does not match the request: {resp:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    /// Reused request-frame scratch.
    out: Vec<u8>,
    /// Reused reply-frame scratch.
    inbuf: Vec<u8>,
}

impl Client {
    /// Connect (blocking mode, Nagle off — same reasoning as the
    /// server side: small frames, latency-bound turns).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            out: Vec::new(),
            inbuf: Vec::new(),
        })
    }

    /// Read `key` at the server's current snapshot.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Value { value } => Ok(value),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Write `key = value` as a single-op transaction.
    pub fn put(&mut self, key: u64, value: u64) -> Result<(), ClientError> {
        match self.call(&Request::Put { key, value })? {
            Response::Done => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Delete `key`, returning the removed value if it existed.
    pub fn del(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        match self.call(&Request::Del { key })? {
            Response::Removed { prev } => Ok(prev),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Apply `ops` as one atomic transaction. Every key must route to
    /// the same shard or the server answers
    /// [`ErrorCode::CrossShardTxn`] (surfaced as
    /// [`ClientError::Server`]) without applying anything.
    pub fn txn(&mut self, ops: Vec<TxnOp>) -> Result<u16, ClientError> {
        match self.call(&Request::Txn { ops })? {
            Response::TxnOk { applied } => Ok(applied),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// One request/reply turn with any [`Request`]. Typed error replies
    /// become [`ClientError::Server`]; callers that want the raw
    /// [`Response`] (benches, tests probing error paths) can match on
    /// that variant.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        match self.recv()? {
            Response::Error {
                code: ErrorCode::Overloaded,
                retry_after_ms,
                message,
            } => Err(ClientError::Overloaded {
                retry_after_ms,
                message,
            }),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Write one request frame without waiting for the reply — the
    /// pipelining half of [`Client::call`]; pair with [`Client::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.out.clear();
        proto::encode_request(req, &mut self.out);
        self.stream.write_all(&self.out)?;
        Ok(())
    }

    /// Block until the next reply frame arrives and decode it.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversize { len }.into());
        }
        self.inbuf.resize(len, 0);
        self.stream.read_exact(&mut self.inbuf)?;
        Ok(proto::decode_response(&self.inbuf)?)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
