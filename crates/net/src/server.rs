//! The server: one nonblocking poll loop multiplexing every client
//! connection onto a [`Router`]'s `N×P` pids through async session
//! admission.
//!
//! No thread is ever parked per waiter. A connection whose request
//! cannot lease a pid holds an `AcquireFuture` parked in the shard's
//! FIFO ticket queue; the session release that frees a pid wakes
//! exactly that future (through the connection's waker, see
//! [`crate::executor`]), and the loop re-polls it on the next
//! iteration. Thousands of connections therefore cost a queue entry
//! and a buffer each — not a stack — which is the whole point of the
//! async admission layer.
//!
//! The loop, per iteration:
//!
//! 1. accept new connections (nonblocking);
//! 2. read every socket, splitting and decoding complete frames;
//! 3. drain the ready set and re-poll exactly the woken admissions;
//! 4. admit each connection's next queued request (one in flight per
//!    connection — responses stay in request order);
//! 5. flush response bytes, reap finished connections;
//! 6. every maintenance tick (~1ms), re-poll deadline-expired
//!    admissions, reap idle connections, sample queue-depth gauges,
//!    sweep expired session leases, and drive the installed
//!    durability-maintenance hook ([`Server::set_maintenance`]);
//! 7. if nothing moved and nothing is woken, sleep until the nearest
//!    pending deadline (capped at the idle-sleep floor, ~50µs).
//!
//! Admission order is audited: tickets are drawn in arrival order, so
//! per shard the granted tickets must be strictly increasing. The
//! counter [`ServerStats::fifo_violations`] stays zero or the pool's
//! fairness contract is broken (the loopback integration test asserts
//! this).
//!
//! # Overload behavior
//!
//! Every queue this server feeds is bounded, and overload degrades to
//! *typed replies*, never dropped connections or unbounded memory
//! ([`ServerConfig`] holds the knobs):
//!
//! * **Load shedding** — with [`ServerConfig::shed_depth`] set, a
//!   request whose shard admission queue is already that deep is
//!   answered [`ErrorCode::Overloaded`] *before* it queues: no
//!   session, no side effects, and the reply carries
//!   [`ServerConfig::retry_after_hint`] as a client backoff hint. The
//!   connection stays open.
//! * **Request deadlines** — with [`ServerConfig::request_deadline`]
//!   set, an admission still queued when its deadline passes is
//!   cancelled (its ticket leaves the queue through the pool's
//!   wake-forwarding cancel path) and answered `Overloaded`; the
//!   connection proceeds to its next request.
//! * **Idle reaping** — with [`ServerConfig::idle_timeout`] set, a
//!   connection with nothing buffered, parsed, pending or unflushed
//!   for that long is closed by the tick. Mid-pipeline connections
//!   are never reaped, however slow.
//!
//! All three are off by default ([`ServerConfig::default`] preserves
//! the unbounded behavior); [`ServerStats`] counts what each did.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use mvcc_core::pool::AcquireState;
use mvcc_core::{Health, MaintenanceHook, Router, Session};
use mvcc_ftree::U64Map;

use crate::conn::{Conn, Hangup};
use crate::executor::{conn_waker, ReadySet};
use crate::proto::{ErrorCode, Request, Response, TxnOp};

/// Sleep when an iteration moves nothing and no admission is woken —
/// the idle latency floor. Small enough to stay invisible next to
/// loopback RTT, large enough not to spin a core on an idle server.
/// A pending request deadline sooner than this shortens the sleep
/// (the loop wakes on the nearest deadline, not a fixed timeout).
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// Coarse maintenance-tick period: deadline re-polls, idle reaping,
/// gauge sampling and lease sweeps happen at this granularity — one
/// clock read per tick, no per-connection or per-waiter timers.
const TICK: Duration = Duration::from_millis(1);

/// Keep at most this many admission-wait samples (oldest kept; the
/// bench harness drains them long before the cap).
const MAX_WAIT_SAMPLES: usize = 1 << 22;

/// Monotone counters the loop maintains; snapshot with
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered (typed error replies included).
    pub requests: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Admissions granted out of ticket order — **must stay zero**;
    /// a nonzero value means the pool broke its FIFO contract.
    pub fifo_violations: u64,
    /// Requests answered [`ErrorCode::Overloaded`] at the door
    /// (admission queue over [`ServerConfig::shed_depth`]).
    pub shed: u64,
    /// Admissions cancelled because their
    /// [`ServerConfig::request_deadline`] passed while queued (also
    /// answered `Overloaded`).
    pub deadline_expired: u64,
    /// Connections closed by the idle reaper
    /// ([`ServerConfig::idle_timeout`]).
    pub reaped_idle: u64,
    /// Deepest per-shard admission queue ever observed (sampled at
    /// shed checks and every tick — a high-water gauge, not a sum).
    pub max_queue_depth: u64,
    /// Times the installed durability-maintenance hook
    /// ([`Server::set_maintenance`]) was driven by the loop's tick.
    pub maintenance_ticks: u64,
    /// Whether the last maintenance hook invocation reported
    /// [`Health::Degraded`] — reclamation is stalled, commits are not.
    pub maintenance_degraded: bool,
}

/// Overload-protection knobs for a [`Server`]. The default is fully
/// permissive — no shedding, no deadlines, no reaping — i.e. exactly
/// the pre-config behavior; production fronts set all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Shed a request (typed [`ErrorCode::Overloaded`] reply, no
    /// side effects) when its shard's admission queue is already this
    /// deep. `None` = never shed.
    pub shed_depth: Option<usize>,
    /// Cancel an admission still queued after this long and answer
    /// `Overloaded`; the connection survives. `None` = wait forever.
    pub request_deadline: Option<Duration>,
    /// Close a connection with no buffered, parsed, pending or
    /// unflushed work for this long. `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// Backoff hint carried in every `Overloaded` reply (clamped to
    /// `u16::MAX` milliseconds on the wire).
    pub retry_after_hint: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shed_depth: None,
            request_deadline: None,
            idle_timeout: None,
            retry_after_hint: Duration::from_millis(1),
        }
    }
}

impl ServerConfig {
    /// The wire form of [`ServerConfig::retry_after_hint`].
    fn retry_after_ms(&self) -> u16 {
        u16::try_from(self.retry_after_hint.as_millis()).unwrap_or(u16::MAX)
    }
}

/// A wire-protocol front end over a [`Router`]: bind with
/// [`Server::bind`], drive with [`Server::run_until`] (or spawn a loop
/// thread with [`Server::start`]).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    router: Arc<Router<U64Map>>,
    config: ServerConfig,
    connections: AtomicU64,
    requests: AtomicU64,
    proto_errors: AtomicU64,
    fifo_violations: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    reaped_idle: AtomicU64,
    max_queue_depth: AtomicU64,
    maintenance_ticks: AtomicU64,
    /// Durability-maintenance hook driven by the loop's tick, plus the
    /// health its last invocation reported (see
    /// [`Server::set_maintenance`]).
    maintenance: Mutex<Option<MaintenanceHook>>,
    maintenance_health: Mutex<Option<Health>>,
    /// Nanoseconds each admitted request waited between joining the
    /// admission queue and leasing its session — the async-path
    /// equivalent of `SessionPool::acquire` wait time.
    wait_samples: Mutex<Vec<u64>>,
}

/// One request parked in (or just entering) a shard's admission queue.
struct Admission {
    /// Ticket + (optional) deadline in the shard pool's FIFO queue;
    /// dropping it surrenders the ticket with wake-forwarding.
    state: AcquireState,
    req: Request,
    shard: usize,
    since: Instant,
}

/// A connection slot: IO state plus at most one in-flight admission.
struct Slot {
    conn: Conn,
    pending: Option<Admission>,
    /// Cached so re-polls pass the *same* waker (`will_wake` then
    /// short-circuits the clone in `poll_acquire`).
    waker: Waker,
    /// Last time this connection's bytes or admission moved — the
    /// idle reaper's clock.
    last_activity: Instant,
}

/// How a parsed request proceeds.
enum Classified {
    /// Answerable without a session (empty `TXN`, cross-shard error).
    Immediate(Response),
    /// Needs a session on this shard — enter the admission queue.
    Admit(usize),
}

impl Server {
    /// Bind a listener and wrap `router` behind it. `addr` may be
    /// `"127.0.0.1:0"` for an ephemeral port ([`Server::local_addr`]
    /// reports the choice).
    pub fn bind(router: Arc<Router<U64Map>>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::bind_with(router, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit overload-protection knobs.
    pub fn bind_with(
        router: Arc<Router<U64Map>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            router,
            config,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            fifo_violations: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            maintenance_ticks: AtomicU64::new(0),
            maintenance: Mutex::new(None),
            maintenance_health: Mutex::new(None),
            wait_samples: Mutex::new(Vec::new()),
        })
    }

    /// [`Server::bind`] plus a named loop thread: returns a handle that
    /// stops and joins the loop on [`ServerHandle::shutdown`] (or drop).
    pub fn start(
        router: Arc<Router<U64Map>>,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ServerHandle> {
        Server::start_with(router, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit overload-protection knobs.
    pub fn start_with(
        router: Arc<Router<U64Map>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let server = Arc::new(Server::bind_with(router, addr, config)?);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mvcc-net-server".into())
                .spawn(move || server.run_until(&stop))?
        };
        Ok(ServerHandle {
            server,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router this server fronts.
    pub fn router(&self) -> &Arc<Router<U64Map>> {
        &self.router
    }

    /// The overload-protection knobs this server runs with.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Snapshot the loop's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            fifo_violations: self.fifo_violations.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            maintenance_ticks: self.maintenance_ticks.load(Ordering::Relaxed),
            maintenance_degraded: self.maintenance_health().is_some_and(|h| h.is_degraded()),
        }
    }

    /// Install a durability-maintenance hook the loop drives from its
    /// coarse tick (~1ms): typically
    /// `DurableDatabase::maintenance_hook`, which embeds the
    /// checkpoint/retention supervisor in this server's thread instead
    /// of a dedicated one. The hook runs *between* request batches —
    /// a checkpoint executes synchronously in the tick, so admission
    /// pauses for its duration, but commits already queued on the WAL
    /// flush independently. Installing replaces any previous hook.
    pub fn set_maintenance(&self, hook: MaintenanceHook) {
        *self.maintenance.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
    }

    /// The health the maintenance hook reported on its last tick
    /// (`None` until a hook is installed and has run once).
    pub fn maintenance_health(&self) -> Option<Health> {
        self.maintenance_health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drain the recorded admission-wait samples (ns). The bench
    /// harness turns these into the async-path wait-tail percentiles.
    pub fn take_wait_samples(&self) -> Vec<u64> {
        std::mem::take(&mut *self.wait_samples.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run the poll loop until `stop` turns true (checked every
    /// iteration; shutdown latency is one iteration plus the idle
    /// sleep, i.e. well under a millisecond).
    pub fn run_until(&self, stop: &AtomicBool) -> io::Result<()> {
        let router = &*self.router;
        let ready = ReadySet::new();
        let mut slots: Vec<Option<Slot>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut woken: Vec<usize> = Vec::new();
        // Per-shard FIFO audit trail: the last granted ticket.
        let mut last_ticket: Vec<Option<u64>> = vec![None; router.shards()];
        let mut next_tick = Instant::now() + TICK;

        while !stop.load(Ordering::Relaxed) {
            let mut progress = false;

            // 1. Accept.
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let Ok(conn) = Conn::new(stream) else {
                            continue;
                        };
                        let id = free.pop().unwrap_or_else(|| {
                            slots.push(None);
                            slots.len() - 1
                        });
                        let waker = conn_waker(&ready, id);
                        slots[id] = Some(Slot {
                            conn,
                            pending: None,
                            waker,
                            last_activity: Instant::now(),
                        });
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }

            // 2. Read and parse every socket.
            for slot in slots.iter_mut().flatten() {
                if slot.conn.fill() {
                    slot.last_activity = Instant::now();
                    progress = true;
                }
            }

            // 3. Re-poll exactly the woken admissions.
            ready.drain_into(&mut woken);
            for &id in &woken {
                if let Some(slot) = slots.get_mut(id).and_then(Option::as_mut) {
                    progress |= self.drive(router, slot, &mut last_ticket);
                }
            }

            // 4. Admit next requests on connections with no admission in
            //    flight (drive() loops on to the pipeline's next request
            //    after each grant, so this also covers fresh arrivals).
            for slot in slots.iter_mut().flatten() {
                if slot.pending.is_none() && slot.conn.parsed_backlog() > 0 {
                    progress |= self.drive(router, slot, &mut last_ticket);
                }
            }

            // 5. Flush, then reap finished connections.
            for (id, entry) in slots.iter_mut().enumerate() {
                let Some(slot) = entry.as_mut() else { continue };
                if slot.conn.flush() {
                    slot.last_activity = Instant::now();
                    progress = true;
                }
                let reap = match slot.conn.hangup() {
                    // Protocol violation: close once the typed farewell
                    // reply is on the wire.
                    Some(Hangup::Proto(_)) => slot.conn.flushed(),
                    // Socket error: nothing more can move.
                    Some(Hangup::Io(_)) => true,
                    // Peer half-closed: serve what it pipelined, then
                    // close once everything is answered and flushed.
                    Some(Hangup::Eof) => {
                        slot.pending.is_none()
                            && slot.conn.parsed_backlog() == 0
                            && slot.conn.flushed()
                    }
                    None => false,
                };
                if reap {
                    if matches!(slot.conn.hangup(), Some(Hangup::Proto(_))) {
                        self.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    // Dropping the slot drops any pending AcquireState,
                    // which surrenders its ticket and forwards a stolen
                    // wake — a dying connection cannot stall the queue.
                    *entry = None;
                    free.push(id);
                    progress = true;
                }
            }

            // 6. Coarse maintenance tick.
            let now = Instant::now();
            if now >= next_tick {
                progress |= self.tick(router, &mut slots, &mut free, &mut last_ticket, now);
                next_tick = now + TICK;
            }

            // 7. Idle? Sleep until the nearest pending deadline, capped
            //    at the idle floor — a request about to expire is not
            //    kept waiting for a full IDLE_SLEEP.
            if !progress && ready.is_empty() {
                let mut sleep = IDLE_SLEEP;
                let now = Instant::now();
                for slot in slots.iter().flatten() {
                    if let Some(d) = slot.pending.as_ref().and_then(|a| a.state.deadline()) {
                        sleep = sleep.min(d.saturating_duration_since(now));
                    }
                }
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
        Ok(())
    }

    /// The coarse maintenance tick (every [`TICK`] of loop time):
    ///
    /// * re-poll admissions whose deadline has passed — no release will
    ///   wake them, so the expiry must be *observed* here;
    /// * reap connections idle past [`ServerConfig::idle_timeout`]
    ///   (nothing buffered, parsed, pending or unflushed — a slow
    ///   mid-pipeline connection is never reaped);
    /// * sample the per-shard admission-queue depth high-water gauge;
    /// * sweep expired session leases on the router (other holders of
    ///   the same router may lease with timeouts; the server's tick is
    ///   the reaper that makes those deadlines real);
    /// * drive the installed durability-maintenance hook and record
    ///   the [`Health`] it reports ([`Server::set_maintenance`]).
    fn tick(
        &self,
        router: &Router<U64Map>,
        slots: &mut [Option<Slot>],
        free: &mut Vec<usize>,
        last_ticket: &mut [Option<u64>],
        now: Instant,
    ) -> bool {
        let mut progress = false;
        for (id, entry) in slots.iter_mut().enumerate() {
            let Some(slot) = entry.as_mut() else { continue };
            // Deadline-expired admissions: poll observes the expiry and
            // answers Overloaded (the connection lives on).
            let expired = slot
                .pending
                .as_ref()
                .and_then(|a| a.state.deadline())
                .is_some_and(|d| now >= d);
            if expired {
                progress |= self.drive(router, slot, last_ticket);
            }
            // Idle reaper.
            if let Some(idle) = self.config.idle_timeout {
                if slot.pending.is_none()
                    && slot.conn.hangup().is_none()
                    && slot.conn.is_idle()
                    && now.duration_since(slot.last_activity) >= idle
                {
                    *entry = None;
                    free.push(id);
                    self.reaped_idle.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
            }
        }
        for shard in 0..router.shards() {
            self.note_queue_depth(router.with_shard(shard).pool().waiters());
        }
        router.reap_leases();
        // Drive the durability-maintenance hook, if installed. The Arc
        // is cloned out so the hook (which may run a checkpoint) never
        // executes under the server's own lock.
        let hook = self
            .maintenance
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(hook) = hook {
            let health = hook();
            self.maintenance_ticks.fetch_add(1, Ordering::Relaxed);
            *self
                .maintenance_health
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(health);
        }
        progress
    }

    /// Update the queue-depth high-water gauge.
    fn note_queue_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// The typed load-shed reply (side-effect-free by construction: it
    /// is staged before any session exists for the request).
    fn overloaded(&self, what: &str) -> Response {
        Response::Error {
            code: ErrorCode::Overloaded,
            retry_after_ms: self.config.retry_after_ms(),
            message: format!(
                "request shed under overload ({what}); back off and retry — \
                 nothing was applied and this connection is still good"
            ),
        }
    }

    /// Drive one connection: poll its pending admission and, after each
    /// grant, admit the pipeline's next request — until something parks
    /// or the backlog empties. Returns whether anything moved.
    fn drive(
        &self,
        router: &Router<U64Map>,
        slot: &mut Slot,
        last_ticket: &mut [Option<u64>],
    ) -> bool {
        let mut progress = false;
        loop {
            if slot.pending.is_none() {
                let Some(req) = slot.conn.pop_request() else {
                    break;
                };
                match classify(router, &req) {
                    Classified::Immediate(resp) => {
                        slot.conn.push_response(&resp);
                        self.requests.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                        continue;
                    }
                    Classified::Admit(shard) => {
                        // Shed at the door: over the depth threshold the
                        // request never queues and never gets a session —
                        // the reply is typed and side-effect-free.
                        let depth = router.with_shard(shard).pool().waiters();
                        self.note_queue_depth(depth);
                        if self.config.shed_depth.is_some_and(|limit| depth >= limit) {
                            slot.conn
                                .push_response(&self.overloaded("admission queue at depth limit"));
                            self.shed.fetch_add(1, Ordering::Relaxed);
                            self.requests.fetch_add(1, Ordering::Relaxed);
                            progress = true;
                            continue;
                        }
                        let state = match self.config.request_deadline {
                            Some(d) => AcquireState::with_deadline(Instant::now() + d),
                            None => AcquireState::default(),
                        };
                        slot.pending = Some(Admission {
                            state,
                            req,
                            shard,
                            since: Instant::now(),
                        });
                    }
                }
            }
            let adm = slot.pending.as_mut().expect("set above");
            let pool = router.with_shard(adm.shard).pool();
            let mut cx = Context::from_waker(&slot.waker);
            match pool.poll_acquire_deadline(&mut cx, &mut adm.state) {
                Poll::Ready(Ok(mut session)) => {
                    let adm = slot.pending.take().expect("still in flight");
                    self.audit_fifo(&adm, last_ticket);
                    self.record_wait(adm.since.elapsed());
                    let resp = execute(&mut session, &adm.req);
                    // Dropping the session releases the pid and wakes
                    // the next waiter (possibly another connection's
                    // admission, via the ready set).
                    drop(session);
                    slot.conn.push_response(&resp);
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Poll::Ready(Err(_expired)) => {
                    // Deadline passed while queued: the ticket already
                    // left the queue (wake forwarded); answer Overloaded
                    // and move on to the pipeline's next request.
                    slot.pending = None;
                    slot.conn
                        .push_response(&self.overloaded("request deadline passed in queue"));
                    self.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Poll::Pending => break,
            }
        }
        progress
    }

    /// Granted tickets are drawn in arrival order, so per shard they
    /// must be strictly increasing — the observable form of the pool's
    /// FIFO fairness contract.
    fn audit_fifo(&self, adm: &Admission, last_ticket: &mut [Option<u64>]) {
        let Some(ticket) = adm.state.ticket() else {
            return;
        };
        let last = &mut last_ticket[adm.shard];
        if last.is_some_and(|l| ticket <= l) {
            self.fifo_violations.fetch_add(1, Ordering::Relaxed);
        }
        *last = Some(ticket);
    }

    fn record_wait(&self, waited: Duration) {
        let mut samples = self.wait_samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() < MAX_WAIT_SAMPLES {
            samples.push(waited.as_nanos() as u64);
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shards", &self.router.shards())
            .field("capacity", &self.router.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Decide how a request proceeds (see [`Classified`]). Runs before
/// admission so requests that need no session never queue.
fn classify(router: &Router<U64Map>, req: &Request) -> Classified {
    match req {
        Request::Txn { ops } if ops.is_empty() => {
            Classified::Immediate(Response::TxnOk { applied: 0 })
        }
        Request::Txn { ops } => {
            let shard = router.shard_for(&ops[0].key());
            match ops.iter().find(|op| router.shard_for(&op.key()) != shard) {
                Some(stray) => Classified::Immediate(Response::Error {
                    code: ErrorCode::CrossShardTxn,
                    retry_after_ms: 0,
                    message: format!(
                        "key {} routes to shard {}, not the batch's shard {shard}; \
                         shards are independent databases and cross-shard \
                         transactions do not exist",
                        stray.key(),
                        router.shard_for(&stray.key()),
                    ),
                }),
                None => Classified::Admit(shard),
            }
        }
        _ => {
            let key = req.routing_key().expect("non-TXN requests carry a key");
            Classified::Admit(router.shard_for(&key))
        }
    }
}

/// Run one admitted request inside its session lease.
fn execute(session: &mut Session<'_, U64Map>, req: &Request) -> Response {
    match req {
        Request::Get { key } => Response::Value {
            value: session.get(key),
        },
        Request::Put { key, value } => {
            session.insert(*key, *value);
            Response::Done
        }
        Request::Del { key } => Response::Removed {
            prev: session.remove(key),
        },
        Request::Txn { ops } => {
            session.write(|txn| {
                for op in ops {
                    match *op {
                        TxnOp::Put { key, value } => txn.insert(key, value),
                        TxnOp::Del { key } => {
                            txn.remove(&key);
                        }
                    }
                }
            });
            Response::TxnOk {
                applied: ops.len() as u16,
            }
        }
    }
}

/// Owner of a running server loop thread (see [`Server::start`]).
/// Dropping the handle stops and joins the loop.
pub struct ServerHandle {
    server: Arc<Server>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The server (stats, wait samples, router).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stop the loop and join its thread, returning the loop's exit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t.join().expect("server loop panicked"),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr())
            .finish()
    }
}
