//! The server: one nonblocking poll loop multiplexing every client
//! connection onto a [`Router`]'s `N×P` pids through async session
//! admission.
//!
//! No thread is ever parked per waiter. A connection whose request
//! cannot lease a pid holds an `AcquireFuture` parked in the shard's
//! FIFO ticket queue; the session release that frees a pid wakes
//! exactly that future (through the connection's waker, see
//! [`crate::executor`]), and the loop re-polls it on the next
//! iteration. Thousands of connections therefore cost a queue entry
//! and a buffer each — not a stack — which is the whole point of the
//! async admission layer.
//!
//! The loop, per iteration:
//!
//! 1. accept new connections (nonblocking);
//! 2. read every socket, splitting and decoding complete frames;
//! 3. drain the ready set and re-poll exactly the woken admissions;
//! 4. admit each connection's next queued request (one in flight per
//!    connection — responses stay in request order);
//! 5. flush response bytes, reap finished connections;
//! 6. if nothing moved and nothing is woken, sleep briefly.
//!
//! Admission order is audited: tickets are drawn in arrival order, so
//! per shard the granted tickets must be strictly increasing. The
//! counter [`ServerStats::fifo_violations`] stays zero or the pool's
//! fairness contract is broken (the loopback integration test asserts
//! this).

use std::future::Future;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use mvcc_core::pool::AcquireFuture;
use mvcc_core::{Router, Session};
use mvcc_ftree::U64Map;

use crate::conn::{Conn, Hangup};
use crate::executor::{conn_waker, ReadySet};
use crate::proto::{ErrorCode, Request, Response, TxnOp};

/// Sleep when an iteration moves nothing and no admission is woken —
/// the idle latency floor. Small enough to stay invisible next to
/// loopback RTT, large enough not to spin a core on an idle server.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// Keep at most this many admission-wait samples (oldest kept; the
/// bench harness drains them long before the cap).
const MAX_WAIT_SAMPLES: usize = 1 << 22;

/// Monotone counters the loop maintains; snapshot with
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered (typed error replies included).
    pub requests: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Admissions granted out of ticket order — **must stay zero**;
    /// a nonzero value means the pool broke its FIFO contract.
    pub fifo_violations: u64,
}

/// A wire-protocol front end over a [`Router`]: bind with
/// [`Server::bind`], drive with [`Server::run_until`] (or spawn a loop
/// thread with [`Server::start`]).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    router: Arc<Router<U64Map>>,
    connections: AtomicU64,
    requests: AtomicU64,
    proto_errors: AtomicU64,
    fifo_violations: AtomicU64,
    /// Nanoseconds each admitted request waited between joining the
    /// admission queue and leasing its session — the async-path
    /// equivalent of `SessionPool::acquire` wait time.
    wait_samples: Mutex<Vec<u64>>,
}

/// One request parked in (or just entering) a shard's admission queue.
struct Admission<'r> {
    fut: AcquireFuture<'r, U64Map>,
    req: Request,
    shard: usize,
    since: Instant,
}

/// A connection slot: IO state plus at most one in-flight admission.
struct Slot<'r> {
    conn: Conn,
    pending: Option<Admission<'r>>,
    /// Cached so re-polls pass the *same* waker (`will_wake` then
    /// short-circuits the clone in `poll_acquire`).
    waker: Waker,
}

/// How a parsed request proceeds.
enum Classified {
    /// Answerable without a session (empty `TXN`, cross-shard error).
    Immediate(Response),
    /// Needs a session on this shard — enter the admission queue.
    Admit(usize),
}

impl Server {
    /// Bind a listener and wrap `router` behind it. `addr` may be
    /// `"127.0.0.1:0"` for an ephemeral port ([`Server::local_addr`]
    /// reports the choice).
    pub fn bind(router: Arc<Router<U64Map>>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            router,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            fifo_violations: AtomicU64::new(0),
            wait_samples: Mutex::new(Vec::new()),
        })
    }

    /// [`Server::bind`] plus a named loop thread: returns a handle that
    /// stops and joins the loop on [`ServerHandle::shutdown`] (or drop).
    pub fn start(
        router: Arc<Router<U64Map>>,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ServerHandle> {
        let server = Arc::new(Server::bind(router, addr)?);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("mvcc-net-server".into())
                .spawn(move || server.run_until(&stop))?
        };
        Ok(ServerHandle {
            server,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router this server fronts.
    pub fn router(&self) -> &Arc<Router<U64Map>> {
        &self.router
    }

    /// Snapshot the loop's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            fifo_violations: self.fifo_violations.load(Ordering::Relaxed),
        }
    }

    /// Drain the recorded admission-wait samples (ns). The bench
    /// harness turns these into the async-path wait-tail percentiles.
    pub fn take_wait_samples(&self) -> Vec<u64> {
        std::mem::take(&mut *self.wait_samples.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run the poll loop until `stop` turns true (checked every
    /// iteration; shutdown latency is one iteration plus the idle
    /// sleep, i.e. well under a millisecond).
    pub fn run_until(&self, stop: &AtomicBool) -> io::Result<()> {
        let router = &*self.router;
        let ready = ReadySet::new();
        let mut slots: Vec<Option<Slot<'_>>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut woken: Vec<usize> = Vec::new();
        // Per-shard FIFO audit trail: the last granted ticket.
        let mut last_ticket: Vec<Option<u64>> = vec![None; router.shards()];

        while !stop.load(Ordering::Relaxed) {
            let mut progress = false;

            // 1. Accept.
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let Ok(conn) = Conn::new(stream) else {
                            continue;
                        };
                        let id = free.pop().unwrap_or_else(|| {
                            slots.push(None);
                            slots.len() - 1
                        });
                        let waker = conn_waker(&ready, id);
                        slots[id] = Some(Slot {
                            conn,
                            pending: None,
                            waker,
                        });
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }

            // 2. Read and parse every socket.
            for slot in slots.iter_mut().flatten() {
                progress |= slot.conn.fill();
            }

            // 3. Re-poll exactly the woken admissions.
            ready.drain_into(&mut woken);
            for &id in &woken {
                if let Some(slot) = slots.get_mut(id).and_then(Option::as_mut) {
                    progress |= self.drive(router, slot, &mut last_ticket);
                }
            }

            // 4. Admit next requests on connections with no admission in
            //    flight (drive() loops on to the pipeline's next request
            //    after each grant, so this also covers fresh arrivals).
            for slot in slots.iter_mut().flatten() {
                if slot.pending.is_none() && slot.conn.parsed_backlog() > 0 {
                    progress |= self.drive(router, slot, &mut last_ticket);
                }
            }

            // 5. Flush, then reap finished connections.
            for (id, entry) in slots.iter_mut().enumerate() {
                let Some(slot) = entry.as_mut() else { continue };
                progress |= slot.conn.flush();
                let reap = match slot.conn.hangup() {
                    // Protocol violation: close once the typed farewell
                    // reply is on the wire.
                    Some(Hangup::Proto(_)) => slot.conn.flushed(),
                    // Socket error: nothing more can move.
                    Some(Hangup::Io(_)) => true,
                    // Peer half-closed: serve what it pipelined, then
                    // close once everything is answered and flushed.
                    Some(Hangup::Eof) => {
                        slot.pending.is_none()
                            && slot.conn.parsed_backlog() == 0
                            && slot.conn.flushed()
                    }
                    None => false,
                };
                if reap {
                    if matches!(slot.conn.hangup(), Some(Hangup::Proto(_))) {
                        self.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    // Dropping the slot drops any pending AcquireFuture,
                    // which surrenders its ticket and forwards a stolen
                    // wake — a dying connection cannot stall the queue.
                    *entry = None;
                    free.push(id);
                    progress = true;
                }
            }

            // 6. Idle?
            if !progress && ready.is_empty() {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        Ok(())
    }

    /// Drive one connection: poll its pending admission and, after each
    /// grant, admit the pipeline's next request — until something parks
    /// or the backlog empties. Returns whether anything moved.
    fn drive<'r>(
        &self,
        router: &'r Router<U64Map>,
        slot: &mut Slot<'r>,
        last_ticket: &mut [Option<u64>],
    ) -> bool {
        let mut progress = false;
        loop {
            if slot.pending.is_none() {
                let Some(req) = slot.conn.pop_request() else {
                    break;
                };
                match classify(router, &req) {
                    Classified::Immediate(resp) => {
                        slot.conn.push_response(&resp);
                        self.requests.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                        continue;
                    }
                    Classified::Admit(shard) => {
                        slot.pending = Some(Admission {
                            fut: router.with_shard(shard).pool().acquire_async(),
                            req,
                            shard,
                            since: Instant::now(),
                        });
                    }
                }
            }
            let adm = slot.pending.as_mut().expect("set above");
            let mut cx = Context::from_waker(&slot.waker);
            match Pin::new(&mut adm.fut).poll(&mut cx) {
                Poll::Ready(mut session) => {
                    let adm = slot.pending.take().expect("still in flight");
                    self.audit_fifo(&adm, last_ticket);
                    self.record_wait(adm.since.elapsed());
                    let resp = execute(&mut session, &adm.req);
                    // Dropping the session releases the pid and wakes
                    // the next waiter (possibly another connection's
                    // admission, via the ready set).
                    drop(session);
                    slot.conn.push_response(&resp);
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Poll::Pending => break,
            }
        }
        progress
    }

    /// Granted tickets are drawn in arrival order, so per shard they
    /// must be strictly increasing — the observable form of the pool's
    /// FIFO fairness contract.
    fn audit_fifo(&self, adm: &Admission<'_>, last_ticket: &mut [Option<u64>]) {
        let Some(ticket) = adm.fut.ticket() else {
            return;
        };
        let last = &mut last_ticket[adm.shard];
        if last.is_some_and(|l| ticket <= l) {
            self.fifo_violations.fetch_add(1, Ordering::Relaxed);
        }
        *last = Some(ticket);
    }

    fn record_wait(&self, waited: Duration) {
        let mut samples = self.wait_samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() < MAX_WAIT_SAMPLES {
            samples.push(waited.as_nanos() as u64);
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shards", &self.router.shards())
            .field("capacity", &self.router.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Decide how a request proceeds (see [`Classified`]). Runs before
/// admission so requests that need no session never queue.
fn classify(router: &Router<U64Map>, req: &Request) -> Classified {
    match req {
        Request::Txn { ops } if ops.is_empty() => {
            Classified::Immediate(Response::TxnOk { applied: 0 })
        }
        Request::Txn { ops } => {
            let shard = router.shard_for(&ops[0].key());
            match ops.iter().find(|op| router.shard_for(&op.key()) != shard) {
                Some(stray) => Classified::Immediate(Response::Error {
                    code: ErrorCode::CrossShardTxn,
                    message: format!(
                        "key {} routes to shard {}, not the batch's shard {shard}; \
                         shards are independent databases and cross-shard \
                         transactions do not exist",
                        stray.key(),
                        router.shard_for(&stray.key()),
                    ),
                }),
                None => Classified::Admit(shard),
            }
        }
        _ => {
            let key = req.routing_key().expect("non-TXN requests carry a key");
            Classified::Admit(router.shard_for(&key))
        }
    }
}

/// Run one admitted request inside its session lease.
fn execute(session: &mut Session<'_, U64Map>, req: &Request) -> Response {
    match req {
        Request::Get { key } => Response::Value {
            value: session.get(key),
        },
        Request::Put { key, value } => {
            session.insert(*key, *value);
            Response::Done
        }
        Request::Del { key } => Response::Removed {
            prev: session.remove(key),
        },
        Request::Txn { ops } => {
            session.write(|txn| {
                for op in ops {
                    match *op {
                        TxnOp::Put { key, value } => txn.insert(key, value),
                        TxnOp::Del { key } => {
                            txn.remove(&key);
                        }
                    }
                }
            });
            Response::TxnOk {
                applied: ops.len() as u16,
            }
        }
    }
}

/// Owner of a running server loop thread (see [`Server::start`]).
/// Dropping the handle stops and joins the loop.
pub struct ServerHandle {
    server: Arc<Server>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The server (stats, wait samples, router).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stop the loop and join its thread, returning the loop's exit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t.join().expect("server loop panicked"),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr())
            .finish()
    }
}
