//! The hand-rolled executor underneath the server: a ready set fed by
//! per-connection [`Waker`]s.
//!
//! There is no task heap and no runtime here — the server's poll loop
//! *is* the executor. Each connection with a request parked in the
//! session admission queue holds one `AcquireFuture`; the waker handed
//! to that future, when woken by a session release, pushes the
//! connection's id into a shared [`ReadySet`]. The loop drains the set
//! each iteration and re-polls exactly the woken futures — so one
//! session release translates into one future poll, mirroring the
//! pool's one-wake-per-release invariant at the connection layer.
//!
//! Wakes can arrive from any thread (a sync `Session` dropped elsewhere
//! releases the same pids), so the set is a mutex-guarded id vector
//! with a dedup bitmask; the loop never blocks on it.
//!
//! For driving a single future from synchronous code (tests, simple
//! clients), use [`block_on`] — re-exported from `mvcc_core::pool`,
//! where the admission futures live.

use std::sync::{Arc, Mutex};
use std::task::{Wake, Waker};

pub use mvcc_core::pool::block_on;

/// Connection ids whose admission futures have been woken and must be
/// re-polled. Shared between the poll loop (drains) and every
/// connection waker (inserts, possibly from other threads).
pub struct ReadySet {
    inner: Mutex<ReadyInner>,
}

struct ReadyInner {
    /// Woken ids in wake order (FIFO re-poll keeps admission audits
    /// deterministic).
    ids: Vec<usize>,
    /// `queued[id]` — id already in `ids`? Dedups redundant wakes
    /// (coalesced permits, waker clones) without growing `ids`.
    queued: Vec<bool>,
}

impl ReadySet {
    pub fn new() -> Arc<ReadySet> {
        Arc::new(ReadySet {
            inner: Mutex::new(ReadyInner {
                ids: Vec::new(),
                queued: Vec::new(),
            }),
        })
    }

    /// Mark `id` ready (idempotent until drained).
    pub fn push(&self, id: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.queued.len() <= id {
            inner.queued.resize(id + 1, false);
        }
        if !inner.queued[id] {
            inner.queued[id] = true;
            inner.ids.push(id);
        }
    }

    /// Take the woken ids, in wake order. `out` is reused across loop
    /// iterations (cleared here) so the hot path allocates nothing.
    pub fn drain_into(&self, out: &mut Vec<usize>) {
        out.clear();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::swap(&mut inner.ids, out);
        for &id in out.iter() {
            inner.queued[id] = false;
        }
    }

    /// Is anything woken? (Cheap idle check before sleeping.)
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ids
            .is_empty()
    }
}

/// The waker for one connection's admission future: wake = "push my
/// connection id into the ready set".
struct ConnWaker {
    ready: Arc<ReadySet>,
    id: usize,
}

impl Wake for ConnWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// Build the [`Waker`] that re-schedules connection `id`.
pub fn conn_waker(ready: &Arc<ReadySet>, id: usize) -> Waker {
    Waker::from(Arc::new(ConnWaker {
        ready: Arc::clone(ready),
        id,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakes_dedup_until_drained() {
        let ready = ReadySet::new();
        let w3 = conn_waker(&ready, 3);
        let w1 = conn_waker(&ready, 1);
        w3.wake_by_ref();
        w3.wake_by_ref(); // dedup
        w1.wake_by_ref();
        let mut out = Vec::new();
        ready.drain_into(&mut out);
        assert_eq!(out, vec![3, 1], "wake order preserved, dupes dropped");
        assert!(ready.is_empty());
        // After a drain the id can be woken again.
        w3.wake();
        ready.drain_into(&mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn wakes_cross_threads() {
        let ready = ReadySet::new();
        std::thread::scope(|s| {
            for id in 0..8 {
                let w = conn_waker(&ready, id);
                s.spawn(move || w.wake());
            }
        });
        let mut out = Vec::new();
        ready.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
