//! A transactional priority scheduler built on the *generic* transaction
//! wrapper — showing that the paper's framework is not tied to ordered
//! maps: any purely functional structure whose versions are arena roots
//! gets delay-free snapshot readers, atomic commits and precise GC.
//!
//! Several submitter threads enqueue jobs into a persistent leftist
//! min-heap (keyed by deadline); one dispatcher pops the most urgent job
//! transactionally; monitor threads concurrently take consistent
//! snapshots of the whole backlog (its size and next deadline) without
//! ever blocking anyone.
//!
//! ```sh
//! cargo run --release --example priority_scheduler
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::fds::{Heap, VersionedCell};

/// (deadline, job id) — ordered by deadline, id breaks ties.
type Job = (u64, u64);

fn main() {
    const SUBMITTERS: usize = 2;
    const JOBS_PER_SUBMITTER: u64 = 2_000;
    // Leasable pids: SUBMITTERS submitters + 1 dispatcher + 1 monitor.
    // Each thread leases its own `CellSession` — the VM's "one thread per
    // process id" contract enforced by the pool, not by comments.
    let cell = Arc::new(VersionedCell::new(Heap::<Job>::new(), SUBMITTERS + 2));
    let done_submitting = Arc::new(AtomicBool::new(false));
    let dispatched = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // --- Submitters: one write transaction per job ------------------
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|w| {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut session = cell.session().expect("submitter pid");
                    let mut seed = (w as u64 + 1) * 0x9e3779b97f4a7c15;
                    for i in 0..JOBS_PER_SUBMITTER {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let deadline = seed % 1_000_000;
                        let id = (w as u64) << 32 | i;
                        session.write(|heap, base| (heap.insert(base, (deadline, id)), ()));
                    }
                })
            })
            .collect();

        // --- Dispatcher: pop the most urgent job, transactionally -------
        let d_cell = Arc::clone(&cell);
        let d_done = Arc::clone(&done_submitting);
        let d_count = Arc::clone(&dispatched);
        s.spawn(move || {
            let mut session = d_cell.session().expect("dispatcher pid");
            let mut last_deadline_served = 0u64;
            let mut out_of_order = 0u64;
            loop {
                let job = session.write(|heap, base| heap.pop_min(base));
                match job {
                    Some((deadline, _id)) => {
                        // Urgency inversions can only come from jobs that
                        // were submitted after we already served a later
                        // deadline — count them for the report.
                        if deadline < last_deadline_served {
                            out_of_order += 1;
                        }
                        last_deadline_served = last_deadline_served.max(deadline);
                        d_count.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if d_done.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            println!(
                "dispatcher: served {} jobs ({} arrived after a later deadline was served)",
                d_count.load(Ordering::Relaxed),
                out_of_order
            );
        });

        // --- Monitor: delay-free snapshots of the whole backlog ---------
        let m_cell = Arc::clone(&cell);
        let m_done = Arc::clone(&done_submitting);
        s.spawn(move || {
            let mut session = m_cell.session().expect("monitor pid");
            let mut samples = 0u64;
            let mut max_backlog = 0usize;
            while !m_done.load(Ordering::Relaxed) {
                let (len, next) =
                    session.read(|heap, root| (heap.len(root), heap.peek_min(root).copied()));
                // A consistent snapshot: a non-empty backlog always has a
                // next deadline.
                assert_eq!(len == 0, next.is_none(), "torn snapshot");
                max_backlog = max_backlog.max(len);
                samples += 1;
            }
            println!("monitor: {samples} snapshots, peak backlog {max_backlog}");
        });

        for h in submitters {
            h.join().unwrap();
        }
        done_submitting.store(true, Ordering::Relaxed);
    });

    let total = SUBMITTERS as u64 * JOBS_PER_SUBMITTER;
    // All worker sessions have dropped; the pool is full again.
    let mut auditor = cell.session().expect("workers returned their pids");
    let remaining = auditor.read(|heap, root| heap.len(root));
    println!(
        "submitted {total}, dispatched {}, remaining {remaining}",
        dispatched.load(Ordering::Relaxed)
    );
    assert_eq!(dispatched.load(Ordering::Relaxed) + remaining as u64, total);
    println!(
        "commits {} / aborts {} (each abort was a concurrent commit)",
        cell.commits(),
        cell.aborts()
    );
    // Precise GC: only the current version's nodes are live.
    println!(
        "arena: {} tuples live of {} allocated",
        cell.structure().arena().live(),
        cell.structure().arena().allocated_total()
    );
    assert_eq!(cell.live_versions(), 1);
}
