//! A wire-protocol client workload: point the binary at a running
//! `examples/server.rs` and it exercises every request type, checks
//! the replies against a local model, and reports round-trip latency.
//!
//! ```sh
//! cargo run --release --example server -- 127.0.0.1:7654   # terminal 1
//! cargo run --release --example client -- 127.0.0.1:7654   # terminal 2
//! ```
//!
//! With no address argument it starts an in-process server on an
//! ephemeral port and runs against that, so the example works (and CI
//! builds prove it runs) without any setup.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use multiversion::core::Router;
use multiversion::ftree::U64Map;
use multiversion::net::{Client, Server, ServerHandle, TxnOp};

const REQUESTS: usize = 500;

fn main() {
    // Connect to the given server, or spin up our own.
    let (addr, _own): (String, Option<ServerHandle>) = match std::env::args().nth(1) {
        Some(addr) => (addr, None),
        None => {
            let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 4));
            let handle = Server::start(router, "127.0.0.1:0").expect("bind");
            (handle.addr().to_string(), Some(handle))
        }
    };
    println!("driving {REQUESTS} requests against {addr}");

    let mut client = Client::connect(addr.as_str()).expect("connect");
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut rtts = Vec::with_capacity(REQUESTS);
    let run = Instant::now();

    for i in 0..REQUESTS {
        let k = (i % 64) as u64;
        let t = Instant::now();
        match i % 4 {
            0 => {
                client.put(k, i as u64).expect("put");
                model.insert(k, i as u64);
            }
            1 => {
                let got = client.get(k).expect("get");
                assert_eq!(got, model.get(&k).copied(), "GET {k} diverged");
            }
            2 => {
                client
                    .txn(vec![
                        TxnOp::Put {
                            key: k,
                            value: i as u64,
                        },
                        TxnOp::Put {
                            key: k,
                            value: i as u64 + 1,
                        },
                    ])
                    .expect("single-key txn is always co-sharded");
                model.insert(k, i as u64 + 1);
            }
            _ => {
                let got = client.del(k).expect("del");
                assert_eq!(got, model.remove(&k), "DEL {k} diverged");
            }
        }
        rtts.push(t.elapsed().as_nanos() as u64);
    }
    let elapsed = run.elapsed();

    // Full final audit: server state matches the model exactly.
    for (&k, &v) in &model {
        assert_eq!(client.get(k).expect("audit get"), Some(v), "key {k}");
    }

    rtts.sort_unstable();
    let pct = |p: f64| rtts[((rtts.len() - 1) as f64 * p).round() as usize] as f64 / 1e3;
    println!(
        "{REQUESTS} requests in {elapsed:?} — rtt p50 {:.1}us p99 {:.1}us max {:.1}us; \
         model audit of {} keys passed",
        pct(0.50),
        pct(0.99),
        pct(1.0),
        model.len()
    );
}
