//! Flat-combining batched writes (Appendix F): many producer threads
//! submit updates; one combiner turns them into atomic parallel batches.
//! No producer ever aborts, and every batch is one version.
//!
//! ```sh
//! cargo run --release --example batched_writes
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use multiversion::prelude::*;

fn main() {
    let producers = 4usize;
    let per_producer = 50_000u64;

    // Two leasable pids: one for the combiner's session, one for a
    // reader session used for spot checks.
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(2));
    let bw: Arc<BatchWriter<U64Map>> = Arc::new(BatchWriter::new(producers, 8 * 1024));
    let stop = Arc::new(AtomicBool::new(false));

    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let bw = bw.clone();
            s.spawn(move || {
                for i in 0..per_producer {
                    let key = (p as u64) * per_producer + i;
                    let ticket = bw.submit_blocking(p, MapOp::Insert(key, key * 3));
                    // Occasionally wait for durability (bounded latency).
                    if i % 10_000 == 9_999 {
                        bw.wait_applied(ticket);
                    }
                }
            });
        }

        let db2 = db.clone();
        let bw2 = bw.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            // The combiner holds a session: its pid, arena shard and
            // release buffer stay pinned for every batch it commits.
            let mut session = db2.session().expect("combiner pid");
            let mut batches = 0u64;
            let mut applied = 0u64;
            let target = producers as u64 * per_producer;
            while applied < target && !stop2.load(Ordering::Relaxed) {
                let n = bw2.combine(&mut session) as u64;
                if n == 0 {
                    std::thread::yield_now();
                } else {
                    applied += n;
                    batches += 1;
                }
            }
            println!(
                "combiner: {applied} ops in {batches} atomic batches \
                 (avg {:.0} ops/batch)",
                applied as f64 / batches.max(1) as f64
            );
        });
    });
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();

    let total = producers as u64 * per_producer;
    println!(
        "{total} updates from {producers} producers in {:.2?} \
         ({:.2} M updates/s), zero aborts",
        elapsed,
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    assert_eq!(db.stats().aborts, 0);
    let mut reader = db.session().expect("reader pid");
    assert_eq!(reader.len(), total as usize);
    // Spot-check values.
    for key in [0u64, per_producer, total - 1] {
        assert_eq!(reader.get(&key), Some(key * 3));
    }
    println!(
        "versions committed: {}, live now: {}",
        db.stats().commits,
        db.live_versions()
    );
    assert_eq!(db.live_versions(), 1);
}
