//! Streaming search-engine demo (§7.2): documents are ingested in atomic
//! batches while query threads run top-k "and"-queries on consistent
//! snapshots — no query ever sees half a document.
//!
//! ```sh
//! cargo run --release --example inverted_index
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::prelude::*;
use multiversion::workloads::corpus::{Corpus, CorpusConfig};

fn main() {
    let query_threads = 3usize;
    let idx = Arc::new(InvertedIndex::new(query_threads + 1));
    let mut writer = idx.session().expect("writer pid");

    // Initial corpus.
    let mut corpus = Corpus::new(CorpusConfig::default());
    let initial: Vec<(u64, Vec<(u64, u64)>)> = corpus
        .take(2_000)
        .into_iter()
        .map(|d| (d.id, d.terms))
        .collect();
    for chunk in initial.chunks(256) {
        writer.add_documents(chunk);
    }
    println!(
        "indexed {} initial docs, {} distinct terms",
        2_000,
        writer.term_count()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for q in 0..query_threads {
            let idx = idx.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            s.spawn(move || {
                let mut session = idx.session().expect("query pid");
                let mut qc = Corpus::new(CorpusConfig {
                    seed: 7_000 + q as u64,
                    ..CorpusConfig::default()
                });
                let mut best: Option<(u64, u64)> = None;
                while !stop.load(Ordering::Relaxed) {
                    let (a, b) = qc.query_terms();
                    let top = session.and_query(a, b, 10);
                    if let Some(hit) = top.first() {
                        if best.is_none_or(|b| hit.1 > b.1) {
                            best = Some(*hit);
                        }
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                }
                if let Some((doc, w)) = best {
                    println!("query thread {q}: best hit doc {doc} (weight {w})");
                }
            });
        }

        // Writer: keep ingesting batches of fresh documents.
        for _batch in 0..40 {
            let docs: Vec<(u64, Vec<(u64, u64)>)> = corpus
                .take(100)
                .into_iter()
                .map(|d| (d.id, d.terms))
                .collect();
            writer.add_documents(&docs);
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!(
        "ingested 4000 more docs in 40 atomic batches while {} queries ran",
        queries.load(Ordering::Relaxed)
    );
    println!(
        "final: {} terms, hottest term appears in {} docs",
        writer.term_count(),
        writer.doc_frequency(0)
    );
    println!(
        "live versions: {} — every superseded index version was collected",
        idx.database().live_versions()
    );
    assert_eq!(idx.database().live_versions(), 1);
}
