//! A standalone wire-protocol server: a sharded router behind one
//! nonblocking poll loop, serving GET/PUT/DEL/TXN over plain TCP.
//!
//! Pair with `examples/client.rs` from another terminal:
//!
//! ```sh
//! cargo run --release --example server -- 127.0.0.1:7654
//! cargo run --release --example client -- 127.0.0.1:7654
//! ```
//!
//! With no address argument the server binds an ephemeral loopback
//! port, prints it, serves a short built-in client workload against
//! itself, and exits — so CI's `cargo build --examples` has something
//! runnable without a free well-known port.
//!
//! Shape knobs: `MVCC_SHARDS` (default 2) and `MVCC_PIDS` per shard
//! (default 8). Every connection beyond shards×pids parks its requests
//! in the session admission queue — futures, not threads.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use multiversion::core::Router;
use multiversion::ftree::U64Map;
use multiversion::net::{Client, Server};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let shards = env_usize("MVCC_SHARDS", 2);
    let pids = env_usize("MVCC_PIDS", 8);
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(shards, pids));

    match std::env::args().nth(1) {
        // Foreground mode: serve the given address until killed.
        Some(addr) => {
            let server = Server::bind(Arc::clone(&router), addr.as_str()).expect("bind");
            println!(
                "serving {shards}x{pids} pids on {} (ctrl-c to stop)",
                server.local_addr()
            );
            static RUN_FOREVER: AtomicBool = AtomicBool::new(false);
            server.run_until(&RUN_FOREVER).expect("server loop");
        }
        // Self-test mode: ephemeral port, built-in workload, exit.
        None => {
            let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").expect("bind");
            println!(
                "serving {shards}x{pids} pids on {} (self-test mode)",
                handle.addr()
            );
            let mut client = Client::connect(handle.addr()).expect("connect");
            for k in 0..100u64 {
                client.put(k, k * k).expect("put");
            }
            assert_eq!(client.get(9).expect("get"), Some(81));
            assert_eq!(client.del(9).expect("del"), Some(81));
            drop(client);

            let stats = handle.server().stats();
            handle.shutdown().expect("clean shutdown");
            println!(
                "served {} requests on {} connections, fifo_violations={}",
                stats.requests, stats.connections, stats.fifo_violations
            );
            assert_eq!(router.sessions_leased(), 0, "no pids leaked");
        }
    }
}
