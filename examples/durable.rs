//! Durable MVCC: open-or-recover a database from a directory, commit
//! through the WAL, simulate a crash (drop without checkpointing), and
//! recover — then watch a checkpoint cut the replay tail to zero, and
//! finally run concurrent committers under group commit.
//!
//! The commit protocol publishes every batch to the write-ahead log
//! *before* the version becomes visible, so anything a committed write
//! acknowledged is on disk (`Durability::Always` fsyncs per commit).
//! Recovery loads the newest checkpoint and replays the WAL tail; a torn
//! tail ends replay at the last intact record instead of failing. The
//! last acts switch on `GroupCommit::Leader` — overlapping commits
//! coalesce into shared fsyncs, acknowledged through awaitable
//! `CommitAck`s — and then hand the whole checkpoint/retention chore to
//! the background maintenance supervisor, which is killed mid-flight
//! and recovered from.
//!
//! ```sh
//! cargo run --release --example durable
//! ```

use std::sync::Arc;

use multiversion::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("mvcc-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Durability::Always, with tiny segments so the checkpoint's WAL
    // truncation is visible (only *sealed* segments can be dropped; the
    // default 8 MB rotation threshold would keep everything in one).
    let cfg = DurableConfig {
        segment_bytes: 256,
        ..DurableConfig::default()
    };

    // --- First life: seed some accounts, then "crash" --------------------
    {
        let db: DurableDatabase<SumU64Map> =
            DurableDatabase::recover(&dir, 2, cfg.clone()).expect("open empty dir");
        assert_eq!(db.recovery().replayed, 0, "nothing to replay yet");

        let mut session = db.session().expect("pid free");
        for account in 0..8u64 {
            session.insert(account, 1_000).expect("durable commit");
        }
        session
            .write(|txn| {
                // One atomic transfer: both legs in a single WAL batch.
                let a = *txn.get(&0).unwrap();
                let b = *txn.get(&1).unwrap();
                txn.insert(0, a - 250);
                txn.insert(1, b + 250);
            })
            .expect("durable commit");

        println!(
            "first life: committed ts {} ({} WAL bytes), then crashing without a checkpoint",
            db.last_commit_ts(),
            db.wal_bytes()
        );
        // Dropping here is the crash simulation: no checkpoint, no
        // graceful shutdown. Everything lives only in the WAL.
    }

    // --- Second life: recovery replays the whole WAL tail ----------------
    let db: DurableDatabase<SumU64Map> =
        DurableDatabase::recover(&dir, 2, cfg.clone()).expect("recover");
    let report = db.recovery().clone();
    println!(
        "recovered: checkpoint {:?}, {} batches replayed, last commit ts {}",
        report.checkpoint_ts,
        report.replayed,
        db.last_commit_ts()
    );
    assert_eq!(report.checkpoint_ts, None);
    assert_eq!(report.replayed, 9);

    let mut session = db.session().expect("pid free");
    assert_eq!(session.get(&0), Some(750), "the transfer survived");
    assert_eq!(session.get(&1), Some(1_250));
    assert_eq!(session.read(|snap| snap.aug_total()), 8_000);

    // --- Checkpoint: pin a snapshot, walk it, truncate the WAL -----------
    // The checkpoint walks a pinned snapshot while writers keep
    // committing (the paper's delay-free readers, aimed at real I/O);
    // WAL segments older than its commit_ts are dropped afterwards.
    let before = db.wal_bytes();
    let ts = db.checkpoint().expect("checkpoint");
    session.insert(100, 42).expect("post-checkpoint commit");
    println!(
        "checkpointed at ts {ts}: WAL truncated {before} -> {} bytes",
        db.wal_bytes()
    );
    assert!(db.wal_bytes() < before, "sealed segments were dropped");
    drop(session);
    drop(db);

    // --- Third life: only the post-checkpoint tail replays ---------------
    let db: DurableDatabase<SumU64Map> =
        DurableDatabase::recover(&dir, 2, cfg.clone()).expect("recover");
    println!(
        "recovered again: checkpoint {:?} + {} replayed batch(es)",
        db.recovery().checkpoint_ts,
        db.recovery().replayed
    );
    assert_eq!(db.recovery().checkpoint_ts, Some(ts));
    assert_eq!(db.recovery().replayed, 1, "just the post-checkpoint commit");
    let mut session = db.session().expect("pid free");
    assert_eq!(session.get(&100), Some(42));
    assert_eq!(session.read(|snap| snap.aug_total()), 8_042);

    drop(session);
    drop(db);

    // --- Fourth life: group commit — shared fsyncs, awaitable acks -------
    // Under GroupCommit::Leader commits still log-before-visible, but the
    // fsync moves outside the commit lock: the first durability waiter
    // flushes the whole pending group, so N overlapping committers can
    // share one fsync instead of paying N.
    let db: DurableDatabase<SumU64Map> =
        DurableDatabase::recover(&dir, 4, cfg.clone().with_group_commit(GroupCommit::Leader))
            .expect("recover");
    {
        let mut session = db.session().expect("pid free");
        // write_acked splits the commit at the durability seam: the write
        // is visible and logged when it returns, durable when the ack
        // resolves — work done in between overlaps the group flush.
        let mut acks: Vec<CommitAck> = Vec::new();
        for account in 0..8u64 {
            let ((), ack) = session
                .write_acked(|txn| {
                    let balance = txn.get(&account).copied().unwrap_or(0);
                    txn.insert(account, balance + 5);
                })
                .expect("visible and logged");
            acks.push(ack);
        }
        for ack in acks {
            ack.wait().expect("group fsync");
        }
        let stats = db.durable_stats();
        println!(
            "group commit: {} commits durable in {} group flush(es), mean group {:.2}",
            stats.batches_flushed,
            stats.groups_flushed,
            stats.mean_group()
        );
        assert_eq!(stats.pending_batches, 0, "every ack was waited on");
    }
    // Concurrent committers coalesce for real: each waits its own ack
    // (session.insert == write + wait), overlapping commits share fsyncs.
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let db = &db;
            scope.spawn(move || {
                let mut session = db.session().expect("pid free");
                for j in 0..16u64 {
                    session.insert(1_000 + t * 100 + j, j).expect("durable");
                }
            });
        }
    });
    drop(db);

    // --- Fifth life: coalesced groups replay like any other commits ------
    let db: DurableDatabase<SumU64Map> =
        DurableDatabase::recover(&dir, 2, cfg.clone()).expect("recover");
    let mut session = db.session().expect("pid free");
    assert_eq!(session.get(&0), Some(755), "750 + the group-commit top-up");
    assert_eq!(session.get(&1_000), Some(0), "concurrent commits survived");
    assert_eq!(session.get(&1_315), Some(15));
    println!(
        "recovered once more: checkpoint {:?} + {} replayed batch(es)",
        db.recovery().checkpoint_ts,
        db.recovery().replayed
    );

    drop(session);
    drop(db);

    // --- Sixth life: self-driving durability -----------------------------
    // Instead of calling checkpoint() by hand, hand the chore to the
    // background supervisor: it watches the WAL footprint and runs
    // snapshot-pinned checkpoints off the commit path. Commits never
    // block on it — a failing supervisor only stalls reclamation.
    let db: Arc<DurableDatabase<SumU64Map>> =
        Arc::new(DurableDatabase::recover(&dir, 4, cfg.clone()).expect("recover"));
    let handle = db.start_maintenance(MaintenancePolicy::default().with_wal_bytes_threshold(1_024));
    println!("supervisor on (checkpoint past 1024 WAL bytes); write load:");
    let mut session = db.session().expect("pid free");
    for round in 0..6u64 {
        for j in 0..24u64 {
            session.insert(2_000 + round * 100 + j, j).expect("durable");
        }
        // Give the 2ms-nap supervisor a beat, then sample the trajectory.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let stats = db.maintenance_stats();
        println!(
            "  round {round}: wal {:>5} B after {} checkpoint(s), health {:?}",
            db.wal_bytes(),
            stats.checkpoints,
            db.health()
        );
    }
    assert!(
        db.maintenance_stats().checkpoints >= 1,
        "the load crossed the threshold; the supervisor must have acted"
    );
    assert_eq!(db.health(), Health::Ok);
    drop(session);
    // The kill: drop the handle (joins the supervisor even if a
    // checkpoint is mid-flight — RAII, no torn image, no poisoned WAL)
    // and then drop the database without any graceful shutdown.
    drop(handle);
    drop(db);

    // --- Final life: a supervised crash recovers like any other ----------
    let db: DurableDatabase<SumU64Map> = DurableDatabase::recover(&dir, 2, cfg).expect("recover");
    println!(
        "recovered from the supervised run: checkpoint {:?} + {} replayed batch(es)",
        db.recovery().checkpoint_ts,
        db.recovery().replayed
    );
    assert!(
        db.recovery().checkpoint_ts.is_some(),
        "a background checkpoint anchored recovery"
    );
    let mut session = db.session().expect("pid free");
    for round in 0..6u64 {
        for j in 0..24u64 {
            assert_eq!(session.get(&(2_000 + round * 100 + j)), Some(j));
        }
    }

    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("durable example passed");
}
