//! Comparing the two ways to build a multiversion store — the paper's
//! functional-tree system against the mainstream version-list design —
//! on the scenario the paper's introduction opens with: an analytical
//! reader that takes a *long* time over one snapshot while a writer
//! streams updates.
//!
//! Both designs give the reader a consistent snapshot. The difference
//! this example makes visible:
//!
//! * under version lists, every version that commits while the analyst
//!   is pinned piles up on the chains, and the analyst's own lookups get
//!   slower the longer it looks (delay ∝ uncollected versions);
//! * under the paper's system, the analyst's per-lookup cost never
//!   changes, and the instant it finishes, precise GC reclaims every
//!   superseded tuple at once.
//!
//! ```sh
//! cargo run --release --example mvcc_designs
//! ```

use std::time::Instant;

use multiversion::prelude::*;
use multiversion::vlist::VersionListMap;

const KEYS: u64 = 256;
const COMMITS_WHILE_PINNED: u64 = 2_000;

fn main() {
    println!(
        "== scenario: analyst pins a snapshot; writer commits {COMMITS_WHILE_PINNED} updates ==\n"
    );
    version_list_design();
    println!();
    paper_design();
}

fn version_list_design() {
    let m = VersionListMap::new(2);
    for k in 0..KEYS {
        m.insert(k, k);
    }
    m.vacuum();

    // Analyst pins a snapshot (pid 1); writer keeps committing.
    let snap = m.begin_read(1);
    let fresh_hops = probe_hops(&m, &snap);
    for i in 0..COMMITS_WHILE_PINNED {
        m.insert(i % KEYS, i);
        if i % 64 == 0 {
            m.vacuum(); // the pinned analyst holds the horizon back
        }
    }
    let stale_hops = probe_hops(&m, &snap);
    let live = m.stats().live_versions;

    let t0 = Instant::now();
    let mut sum = 0u64;
    for k in 0..KEYS {
        sum += m.get_at(&snap, k).unwrap();
    }
    let scan = t0.elapsed();
    m.end_read(snap);
    let (_, freed) = m.vacuum();

    println!("version lists (mvcc-vlist):");
    println!("  analyst lookup cost:  {fresh_hops} hops fresh -> {stale_hops} hops after pile-up");
    println!("  full scan of the pinned snapshot: {scan:?} (sum {sum})");
    println!("  versions alive while pinned: {live} (chains must be walked past all of them)");
    println!("  vacuum after release: freed {freed} versions by re-scanning every chain");
}

fn probe_hops(m: &VersionListMap<u64>, t: &multiversion::vlist::ReadTicket) -> u64 {
    (0..8).map(|k| m.get_at_counted(t, k).1).max().unwrap_or(0)
}

fn paper_design() {
    let db: Database<SumU64Map> = Database::new(2);
    let mut writer = db.session().expect("writer pid");
    let mut analyst = db.session().expect("analyst pid");
    writer.write(|txn| {
        let init: Vec<(u64, u64)> = (0..KEYS).map(|k| (k, k)).collect();
        txn.multi_insert(init, |_o, v| *v);
    });

    // Analyst pins a snapshot via a session read guard; writer commits.
    let guard = analyst.begin_read();
    let t0 = Instant::now();
    let sum_before: u64 = guard.snapshot().aug_total();
    let fresh = t0.elapsed();

    for i in 0..COMMITS_WHILE_PINNED {
        writer.insert(i % KEYS, i);
    }

    let live_versions = db.live_versions();
    let live_tuples = db.forest().arena().live();
    let t0 = Instant::now();
    let sum_after: u64 = guard.snapshot().aug_total();
    let stale = t0.elapsed();
    assert_eq!(sum_before, sum_after, "snapshot must not move");

    drop(guard); // analyst done -> precise GC reclaims instantly
    let after_release = db.forest().arena().live();

    println!("functional tree + PSWF (the paper):");
    println!("  analyst query cost:   {fresh:?} fresh -> {stale:?} after pile-up (same tree walk)");
    println!("  versions alive while pinned: {live_versions} (snapshot + current, never chains)");
    println!("  tuples live while pinned: {live_tuples}");
    println!(
        "  tuples live after analyst releases: {after_release} \
         (precise GC, O(freed) work, zero scans)"
    );
    assert_eq!(db.live_versions(), 1);
}
