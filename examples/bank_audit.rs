//! Bank-ledger demo: long-running *auditor* transactions scan thousands of
//! accounts while tellers commit transfers at full speed.
//!
//! This is the scenario where the paper's design dominates: under RCU the
//! slow auditors would block every transfer (writers wait for readers);
//! under epoch reclamation they would pin unbounded garbage. With PSWF the
//! auditors are delay-free, the writer keeps its O(P) delay, and each old
//! version is collected the moment its last auditor finishes.
//!
//! ```sh
//! cargo run --release --example bank_audit
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::prelude::*;

const ACCOUNTS: u64 = 50_000;
const TOTAL: u64 = ACCOUNTS * 100;

fn main() {
    let auditors = 3usize;
    let db: Arc<Database<SumU64Map>> = Arc::new(Database::new(auditors + 1));
    let mut teller = db.session().expect("teller pid");

    teller.write(|txn| {
        let init: Vec<(u64, u64)> = (0..ACCOUNTS).map(|k| (k, 100)).collect();
        txn.multi_insert(init, |_o, v| *v);
    });
    println!("ledger: {ACCOUNTS} accounts x 100 = {TOTAL}");

    let stop = Arc::new(AtomicBool::new(false));
    let transfers = Arc::new(AtomicU64::new(0));
    let audits = Arc::new(AtomicU64::new(0));
    let max_versions = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Auditors: full O(n) scans — deliberately *slow* readers.
        for a in 0..auditors {
            let db = db.clone();
            let stop = stop.clone();
            let audits = audits.clone();
            s.spawn(move || {
                let mut session = db.session().expect("auditor pid");
                while !stop.load(Ordering::Relaxed) {
                    let (sum, count) = session.read(|snap| {
                        let mut sum = 0u64;
                        let mut count = 0u64;
                        snap.for_each(|_, v| {
                            sum += v;
                            count += 1;
                        });
                        (sum, count)
                    });
                    assert_eq!(count, ACCOUNTS, "auditor {a} saw a partial ledger");
                    assert_eq!(sum, TOTAL, "auditor {a} caught money leaking!");
                    audits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Teller: random transfers, never blocked by the auditors.
        let mut rng_state = 0x243F6A8885A308D3u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        while std::time::Instant::now() < deadline {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let from = rng_state % ACCOUNTS;
            let to = (rng_state >> 21) % ACCOUNTS;
            if from == to {
                continue;
            }
            teller.write(|txn| {
                let a = *txn.get(&from).unwrap();
                let b = *txn.get(&to).unwrap();
                let moved = a.min(10);
                txn.insert(from, a - moved);
                txn.insert(to, b + moved);
            });
            transfers.fetch_add(1, Ordering::Relaxed);
            max_versions.fetch_max(db.live_versions(), Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
    });

    let final_total = teller.read(|s| s.aug_total());
    println!(
        "teller committed {} transfers while {} full audits ran",
        transfers.load(Ordering::Relaxed),
        audits.load(Ordering::Relaxed)
    );
    println!(
        "max live versions during run: {} (bounded by auditors + writer + 1)",
        max_versions.load(Ordering::Relaxed)
    );
    println!("final total: {final_total} (invariant held)");
    assert_eq!(final_total, TOTAL);
    assert_eq!(
        db.live_versions(),
        1,
        "precise GC: only the current version"
    );
}
