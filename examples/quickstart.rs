//! Quickstart: a versioned ordered map with delay-free snapshot readers
//! and one writer, demonstrating the paper's headline guarantees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use multiversion::prelude::*;

fn main() {
    // Process ids 0..4: pid 0 is our writer, 1..4 are readers.
    let db: Arc<Database<SumU64Map>> = Arc::new(Database::new(4));

    // --- Write transactions commit whole batches atomically -------------
    db.write(0, |forest, base| {
        let accounts: Vec<(u64, u64)> = (0..16).map(|k| (k, 1_000)).collect();
        (forest.multi_insert(base, accounts, |_old, new| *new), ())
    });
    println!("seeded 16 accounts with 1000 each (total 16000)");

    // --- Readers see consistent snapshots while the writer commits ------
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for pid in 1..4 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // The sum augmentation answers in O(log n); the
                    // invariant holds in *every* snapshot because
                    // transfers commit atomically.
                    let total = db.read(pid, |snap| snap.aug_total());
                    assert_eq!(total, 16_000, "reader {pid} saw a torn transfer!");
                    checks += 1;
                }
                println!("reader {pid}: {checks} consistent snapshot checks");
            });
        }

        // Writer: 10k random transfers between accounts.
        for i in 0..10_000u64 {
            let from = i % 16;
            let to = (i * 7 + 3) % 16;
            db.write(0, |forest, base| {
                let a = *forest.get(base, &from).unwrap();
                let b = *forest.get(base, &to).unwrap();
                let moved = a.min(50);
                let t = forest.insert(base, from, a - moved);
                let t = forest.insert(t, to, b + moved);
                (t, ())
            });
        }
        stop.store(true, Ordering::Relaxed);
    });

    // --- Precise garbage collection --------------------------------------
    let stats = db.stats();
    println!(
        "writer committed {} versions ({} reads ran concurrently)",
        stats.commits, stats.reads
    );
    println!(
        "live versions now: {} (precise GC keeps exactly the current one)",
        db.live_versions()
    );
    println!(
        "arena: {} tuples live of {} ever allocated ({} collected)",
        db.forest().arena().live(),
        db.forest().arena().allocated_total(),
        db.forest().arena().freed_total(),
    );
    assert_eq!(db.live_versions(), 1);
    assert_eq!(db.forest().arena().live(), 16);
    println!("final total: {}", db.read(1, |s| s.aug_total()));
}
