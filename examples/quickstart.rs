//! Quickstart: a versioned ordered map with delay-free snapshot readers
//! and one writer, demonstrating the paper's headline guarantees through
//! the session API.
//!
//! Figure 1's transaction skeletons, as sessions:
//!
//! ```text
//! Read:  let mut s = db.session()?;          // lease process k
//!        s.read(|snap| user_code(snap))      // acquire; user code; release -> collect
//! Write: s.write(|txn| user_code(txn))       // acquire; user code; set;
//!                                            // release -> collect; retry on abort
//! ```
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! `ARCHITECTURE.md` at the repo root maps every layer this walkthrough
//! touches (arena → version maintenance → trees → sessions → network)
//! to the paper; for the durable side — WAL, group commit, awaitable
//! acks, crash recovery — run `examples/durable.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use multiversion::net::{ClientError, Request, Response};
use multiversion::prelude::*;

fn main() {
    // Four process ids: one for our writer, three leased by readers.
    // Sessions make the VM contract ("each process id used by at most
    // one thread at a time") a compile-/lease-time guarantee instead of
    // a doc comment.
    let db: Arc<Database<SumU64Map>> = Arc::new(Database::new(4));
    let mut writer = db.session().expect("4 pids free");

    // --- Write transactions commit whole batches atomically -------------
    writer.write(|txn| {
        let accounts: Vec<(u64, u64)> = (0..16).map(|k| (k, 1_000)).collect();
        txn.multi_insert(accounts, |_old, new| *new);
    });
    println!("seeded 16 accounts with 1000 each (total 16000)");

    // --- Readers see consistent snapshots while the writer commits ------
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for r in 0..3 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                // Each reader thread leases its own session.
                let mut session = db.session().expect("one pid per reader");
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // The sum augmentation answers in O(log n); the
                    // invariant holds in *every* snapshot because
                    // transfers commit atomically.
                    let total = session.read(|snap| snap.aug_total());
                    assert_eq!(total, 16_000, "reader {r} saw a torn transfer!");
                    checks += 1;
                }
                println!("reader {r}: {checks} consistent snapshot checks");
            });
        }

        // Writer: 10k random transfers between accounts, each one atomic
        // commit through the WriteTxn view.
        for i in 0..10_000u64 {
            let from = i % 16;
            let to = (i * 7 + 3) % 16;
            writer.write(|txn| {
                let a = *txn.get(&from).unwrap();
                let b = *txn.get(&to).unwrap();
                let moved = a.min(50);
                txn.insert(from, a - moved);
                txn.insert(to, b + moved);
            });
        }
        stop.store(true, Ordering::Relaxed);
    });

    // --- Precise garbage collection --------------------------------------
    let stats = writer.stats();
    println!(
        "writer committed {} versions ({} reads of its own ran alongside)",
        stats.commits, stats.reads
    );
    println!(
        "live versions now: {} (precise GC keeps exactly the current one)",
        db.live_versions()
    );
    println!(
        "arena: {} tuples live of {} ever allocated ({} collected)",
        db.forest().arena().live(),
        db.forest().arena().allocated_total(),
        db.forest().arena().freed_total(),
    );
    assert_eq!(db.live_versions(), 1);
    assert_eq!(db.forest().arena().live(), 16);
    println!("final total: {}", writer.read(|s| s.aug_total()));

    // Leases are exclusive: with the writer still live, only 3 pids
    // remain; dropping it frees the fourth.
    assert_eq!(db.sessions_leased(), 1);
    drop(writer);
    assert_eq!(db.sessions_leased(), 0);

    // --- Session pools: more clients than process ids --------------------
    // `session()` errors once all P pids are out; `pool().acquire()`
    // parks FIFO until one frees instead — 12 client threads share the
    // 4 pids below, and every acquire eventually succeeds.
    let pool = db.pool();
    std::thread::scope(|s| {
        for client in 0..12u64 {
            s.spawn(move || {
                let mut session = pool.acquire(); // waits its turn if needed
                session.write(|txn| txn.insert(1_000 + client, client));
            });
        }
    });
    assert_eq!(db.sessions_leased(), 0);
    println!(
        "12 pooled clients shared {} pids without an error",
        db.processes()
    );

    // --- Parallel bulk operations ----------------------------------------
    // Bulk ops (`multi_insert`, `union`, `filter`, range builds, …) are
    // divide-and-conquer joins that fork onto a work-stealing pool once a
    // subtree exceeds the sequential cutoff, so one big commit uses every
    // core. The pool sizes itself to the host; `MVCC_POOL_THREADS=1`
    // forces fully sequential execution (the debugging escape hatch) and
    // `MVCC_POOL_THREADS=8` pins eight workers. Results are identical
    // either way — only the wall-clock changes.
    let bulk_db: Database<SumU64Map> = Database::new(1);
    let mut bulk = bulk_db.session().expect("pid free");
    bulk.write(|txn| {
        let big: Vec<(u64, u64)> = (0..100_000).map(|k| (k, 1)).collect();
        txn.multi_insert(big, |_old, new| *new); // parallel above the cutoff
    });
    println!(
        "bulk-inserted 100k keys through the fork-join pool (sum {})",
        bulk.read(|s| s.aug_total())
    );
    drop(bulk);

    // --- Router: N×P capacity via sharding -------------------------------
    // A Router owns N independent databases and hashes a tenant/key-space
    // id to a shard (stably: same key, same shard). Aggregate capacity is
    // N×P waiting sessions instead of P.
    let router: Router<SumU64Map> = Router::new(4, 4);
    std::thread::scope(|s| {
        for tenant in 0..8u64 {
            let router = &router;
            s.spawn(move || {
                // All of a tenant's transactions land on its shard.
                let mut session = router.session(&tenant);
                session.write(|txn| {
                    txn.insert(tenant, 100);
                    txn.insert(tenant + 100, 200);
                });
            });
        }
    });
    // Cross-shard sweep for aggregate stats and GC checks.
    assert_eq!(router.stats().commits, 8);
    assert_eq!(router.live_versions(), router.shards() as u64);
    println!(
        "router: {} shards x {} pids = capacity {}, {} commits total",
        router.shards(),
        router.with_shard(0).processes(),
        router.capacity(),
        router.stats().commits
    );

    // --- Serving over the network ----------------------------------------
    // A Server fronts a Router with a length-prefixed binary protocol on
    // plain TCP: one poll-loop thread, no async runtime. Connections
    // beyond the router's capacity park their requests as futures in the
    // same FIFO admission queue `pool.acquire()` uses — a queue entry
    // each, not a blocked thread — so thousands of clients can share N×P
    // pids. See `examples/server.rs` / `examples/client.rs` for the two
    // halves as separate processes.
    let served: Arc<Router<U64Map>> = Arc::new(Router::new(2, 2));
    let handle = Server::start(Arc::clone(&served), "127.0.0.1:0").expect("bind loopback");
    std::thread::scope(|s| {
        for c in 0..8u64 {
            // 8 connections onto 4 pids: half are queued at any moment.
            let addr = handle.addr();
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.put(c, c * 10).expect("put");
                assert_eq!(client.get(c).expect("get"), Some(c * 10));
                client
                    .txn(vec![TxnOp::Put { key: c, value: c }, TxnOp::Del { key: c }])
                    .expect("single-key batch commits atomically");
            });
        }
    });
    let stats = handle.server().stats();
    handle.shutdown().expect("clean shutdown");
    assert_eq!(served.sessions_leased(), 0);
    println!(
        "server: {} requests over {} connections on 4 pids, fifo_violations={}",
        stats.requests, stats.connections, stats.fifo_violations
    );

    // --- Overload behavior ------------------------------------------------
    // Production fronts bound every queue. `ServerConfig` adds the knobs:
    // `shed_depth` caps a shard's admission queue — a request over the
    // limit is answered with a typed Overloaded error carrying a retry
    // hint, before any side effect, and the connection survives;
    // `request_deadline` bounds how long an admitted request may park;
    // `idle_timeout` reaps connections with no work in flight. All three
    // are off by default (`ServerConfig::default()`).
    let guarded: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let cfg = ServerConfig {
        shed_depth: Some(1), // at most one request parked per shard
        request_deadline: Some(Duration::from_secs(2)),
        idle_timeout: None,
        retry_after_hint: Duration::from_millis(5),
    };
    let handle = Server::start_with(Arc::clone(&guarded), "127.0.0.1:0", cfg).expect("bind");
    let camped = guarded.session(&0u64); // hold the only pid: the queue backs up

    let mut parked = Client::connect(handle.addr()).expect("connect");
    let mut turned_away = Client::connect(handle.addr()).expect("connect");
    // This request parks in the admission queue (depth hits the limit).
    parked
        .send(&Request::Put { key: 1, value: 10 })
        .expect("send");
    std::thread::sleep(Duration::from_millis(50)); // let the server park it
                                                   // The next arrival is over the limit: shed at the door, typed reply.
    match turned_away.put(2, 20) {
        Err(ClientError::Overloaded { retry_after_ms, .. }) => {
            println!("shed at the door: retry after {retry_after_ms}ms, nothing applied");
        }
        other => panic!("expected a typed shed, got {other:?}"),
    }
    drop(camped); // capacity returns; the parked request completes untouched
    assert!(matches!(
        parked.recv().expect("parked reply"),
        Response::Done
    ));
    turned_away.put(2, 20).expect("accepted after backoff");
    assert_eq!(turned_away.get(2).expect("get"), Some(20));
    let stats = handle.server().stats();
    drop(parked);
    drop(turned_away);
    handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.shed, 1, "exactly the one over-limit request was shed");
    assert_eq!(guarded.sessions_leased(), 0);
    println!(
        "overload: {} shed, {} deadline-expired, max queue depth {}",
        stats.shed, stats.deadline_expired, stats.max_queue_depth
    );

    // --- Durability --------------------------------------------------------
    // A DurableDatabase writes every commit to a write-ahead log before
    // it becomes visible, and `start_maintenance` puts the checkpoint/
    // retention chore on autopilot: a background supervisor checkpoints
    // once the WAL outgrows the policy threshold, truncates sealed
    // segments, and degrades to a typed `Health` state on I/O trouble
    // instead of blocking commits. (`examples/durable.rs` walks the
    // crash-recovery story end to end.)
    let dir = std::env::temp_dir().join(format!("mvcc-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Small segments: only *sealed* segments can be truncated, so the
    // rotation threshold bounds what a checkpoint can reclaim.
    let durable: Arc<DurableDatabase<SumU64Map>> = Arc::new(
        DurableDatabase::recover(
            &dir,
            2,
            DurableConfig {
                segment_bytes: 1 << 10,
                ..DurableConfig::default()
            },
        )
        .expect("open empty dir"),
    );
    let maintenance =
        durable.start_maintenance(MaintenancePolicy::default().with_wal_bytes_threshold(4 << 10));
    let mut session = durable.session().expect("pid free");
    for i in 0..200u64 {
        session.insert(i, i).expect("durable commit");
    }
    drop(session);
    maintenance.shutdown(); // joins; drop would too
    let stats = durable.maintenance_stats();
    println!(
        "durable: 200 commits supervised — {} checkpoint(s), WAL at {} bytes, health {:?}",
        stats.checkpoints,
        durable.wal_bytes(),
        durable.health()
    );
    assert_eq!(durable.health(), Health::Ok);
    drop(durable);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
