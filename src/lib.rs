//! # multiversion — Multiversion Concurrency with Bounded Delay and
//! Precise Garbage Collection
//!
//! A complete Rust implementation of Ben-David, Blelloch, Sun & Wei's
//! SPAA 2019 system: delay-free snapshot readers, an O(P)-delay single
//! writer (lock-free multi-writer), and garbage collection that reclaims
//! every version the instant its last transaction completes.
//!
//! This crate is an umbrella re-exporting the workspace's public API:
//!
//! * [`plm`] — the reference-counted tuple arena (PLM memory model);
//! * [`vm`] — the Version Maintenance problem: PSWF (Algorithm 4), PSLF,
//!   hazard-pointer, epoch and RCU solutions;
//! * [`ftree`] — persistent augmented balanced trees with join-based
//!   parallel bulk operations (the PAM equivalent);
//! * [`core`] — the transactional framework of Figure 1 plus the
//!   Appendix F batching writer, and the durable layer (WAL-backed
//!   crash recovery, see [`core::DurableDatabase`]);
//! * [`wal`] — the write-ahead log itself: CRC-framed segment files,
//!   atomic checkpoints, and a fault-injection storage for crash tests;
//! * [`fds`] — more functional structures (stack, queue, leftist heap)
//!   and a structure-agnostic transaction wrapper;
//! * [`index`] — the §7.2 weighted inverted-index application;
//! * [`vlist`] — the version-list MVCC baseline the paper argues
//!   against (per-key chains, scan-based vacuum), for measured contrast;
//! * [`baselines`] — concurrent comparator structures (Figure 7);
//! * [`workloads`] — YCSB/Zipfian/corpus generators and the throughput
//!   harness;
//! * [`net`] — a wire-protocol TCP front end whose connections share
//!   the session pids through async admission (futures parked in the
//!   pool's FIFO queue instead of blocked threads).
//!
//! `ARCHITECTURE.md` at the repository root draws the full layer map
//! (arena → version maintenance → trees → transactions → WAL/network),
//! crosswalks every module to the paper's algorithms and sections, and
//! names the invariant each boundary keeps; `BENCH.md` documents the
//! recorded `BENCH_*.json` benchmark corpus. Start there when you need
//! the system-wide picture rather than one crate's contract.
//!
//! ## Quickstart
//!
//! Transactions run through [`core::Session`] handles: each session
//! leases one of the database's process ids (the VM problem's "at most
//! one thread per process id" contract, enforced instead of documented),
//! pins one allocator shard, and reuses its release buffer across
//! transactions.
//!
//! ```
//! use multiversion::core::Database;
//! use multiversion::ftree::SumU64Map;
//!
//! // A map with a range-sum augmentation, for up to 4 processes.
//! let db: Database<SumU64Map> = Database::new(4);
//!
//! // Write transactions commit new immutable versions.
//! let mut writer = db.session().unwrap();
//! writer.write(|txn| {
//!     txn.insert(10, 100);
//!     txn.insert(20, 200);
//! });
//!
//! // Read transactions are delay-free snapshot queries.
//! let mut reader = db.session().unwrap();
//! let sum = reader.read(|snap| snap.aug_range(&0, &50));
//! assert_eq!(sum, 300);
//!
//! // Precision: in quiescence exactly one version is live.
//! assert_eq!(db.live_versions(), 1);
//! ```
//!
//! ## Durability
//!
//! [`core::DurableDatabase`] wraps the same machinery in a write-ahead
//! log: commits publish to the WAL *before* the version becomes
//! visible, checkpoints walk a pinned snapshot while writers proceed,
//! and `recover` replays the newest checkpoint plus the WAL tail —
//! degrading gracefully on a torn tail. [`core::Durability`] picks the
//! fsync trade-off (`Always` per commit, `EveryN` amortized, `Off` for
//! today's pure in-memory behavior), and [`core::GroupCommit`] decides
//! how concurrent `Always` committers share those fsyncs: under
//! `Leader` (or a dedicated `Flusher` thread) overlapping commits
//! coalesce into one multi-record WAL frame and a single fsync, each
//! committer holding an awaitable [`core::CommitAck`] that resolves
//! when its group's flush lands:
//!
//! ```
//! use multiversion::core::{DurableConfig, DurableDatabase, GroupCommit};
//! use multiversion::ftree::U64Map;
//! use multiversion::wal::FaultStorage;
//! use std::sync::Arc;
//!
//! let disk = Arc::new(FaultStorage::unfaulted());
//! let cfg = DurableConfig::default().with_group_commit(GroupCommit::Leader);
//! let db: DurableDatabase<U64Map> =
//!     DurableDatabase::recover_storage(disk, 2, cfg).unwrap();
//! let mut s = db.session().unwrap();
//! // Visible and logged immediately; durable once the ack resolves.
//! let (_, ack) = s.write_acked(|txn| { txn.insert(1, 10); }).unwrap();
//! ack.wait().unwrap();
//! assert!(db.durable_stats().pending_batches == 0);
//! ```
//!
//! See the `mvcc-core` crate docs for the full contract and
//! `examples/durable.rs` for a crash/recover/group-commit walkthrough.
//!
//! ## Serving over the network
//!
//! [`net::Server`] fronts a [`core::Router`] with a length-prefixed
//! binary protocol over plain TCP — no async runtime, one poll-loop
//! thread, every parked request a queue entry rather than a blocked
//! thread (see the `mvcc-net` crate docs and `examples/server.rs` /
//! `examples/client.rs` for the two halves run as real processes):
//!
//! ```
//! use multiversion::core::Router;
//! use multiversion::ftree::U64Map;
//! use multiversion::net::{Client, Server};
//! use std::sync::Arc;
//!
//! // 2 shards x 2 pids behind an ephemeral loopback port.
//! let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 2));
//! let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.put(1, 10).unwrap();
//! assert_eq!(client.get(1).unwrap(), Some(10));
//! assert_eq!(client.del(1).unwrap(), Some(10));
//!
//! drop(client);
//! handle.shutdown().unwrap();
//! assert_eq!(router.sessions_leased(), 0);
//! ```
//!
//! ```
//! use multiversion::core::{Durability, DurableConfig, DurableDatabase};
//! use multiversion::ftree::U64Map;
//! use multiversion::wal::FaultStorage;
//! use std::sync::Arc;
//!
//! let disk = FaultStorage::unfaulted(); // in-memory Storage for the doctest
//! let cfg = DurableConfig::default().with_durability(Durability::Always);
//! {
//!     let db: DurableDatabase<U64Map> =
//!         DurableDatabase::recover_storage(Arc::new(disk.clone()), 2, cfg.clone()).unwrap();
//!     db.session().unwrap().insert(1, 10).unwrap();
//!     // Dropped without a checkpoint: a simulated crash.
//! }
//! let db: DurableDatabase<U64Map> =
//!     DurableDatabase::recover_storage(Arc::new(disk), 2, cfg).unwrap();
//! assert_eq!(db.session().unwrap().get(&1), Some(10));
//! ```

pub use mvcc_baselines as baselines;
pub use mvcc_core as core;
pub use mvcc_fds as fds;
pub use mvcc_ftree as ftree;
pub use mvcc_index as index;
pub use mvcc_net as net;
pub use mvcc_plm as plm;
pub use mvcc_vlist as vlist;
pub use mvcc_vm as vm;
pub use mvcc_wal as wal;
pub use mvcc_workloads as workloads;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use mvcc_core::{
        AcquireTimeout, BatchWriter, CommitAck, Database, Durability, DurableConfig,
        DurableDatabase, DurableError, DurableSession, DurableStats, DurableTxn, GroupCommit,
        Health, LeaseGuard, LeaseRevoked, MaintenanceHandle, MaintenanceHook, MaintenancePolicy,
        MaintenanceStats, MaintenanceTick, MapOp, PoolStats, RecoveryReport, Router, Session,
        SessionError, SessionPool, SessionReadGuard, Snapshot, WriteTxn,
    };
    pub use mvcc_fds::{CellSession, VersionedCell};
    pub use mvcc_ftree::{Forest, MaxU64Map, SumU64Map, TreeParams, U64Map};
    pub use mvcc_index::{IndexSession, InvertedIndex};
    pub use mvcc_net::{Client, Server, ServerConfig, ServerHandle, TxnOp};
    pub use mvcc_vm::{VersionMaintenance, VmKind};
}
